"""End-to-end flows across the whole stack."""


from repro.boolfn import BddEngine
from repro.core import (
    Verdict,
    certify,
    compute_floating_delay,
    compute_transition_delay,
)
from repro.fsm import (
    loads_kiss,
    reachable_states_constraint,
    synthesize,
    transition_pair_constraint,
)
from repro.network import (
    dumps_bench,
    loads_bench,
    refined_delay_annotation,
    scale_delays,
)
from repro.sim import EventSimulator
from repro.circuits import carry_skip_adder, iscas


class TestCombinationalFlow:
    def test_carry_skip_certification_end_to_end(self):
        """The DESIGN.md quickstart scenario: a circuit with false paths,
        through netlist round-trip, delay computation and certification."""
        circuit = loads_bench(dumps_bench(carry_skip_adder(8, 4)), "csa8")
        floating = compute_floating_delay(circuit)
        assert floating.delay < circuit.topological_delay()
        transition = compute_transition_delay(circuit, upper=floating.delay)
        assert transition.delay == floating.delay  # combinational equality
        report = certify(
            scale_delays(circuit, 2),
            accurate_circuit=circuit,
            statistical_samples=10,
        )
        assert report.verdict == Verdict.CERTIFIED_CONSERVATIVE
        assert report.statistics is not None
        assert report.certified_min_period >= report.transition.delay

    def test_c17_full_flow(self):
        report = certify(
            iscas.c17(),
            accurate_circuit=refined_delay_annotation(
                iscas.c17(), base_scale=1, load_per_fanout=0
            ),
        )
        assert report.verdict == Verdict.CERTIFIED
        sim = EventSimulator(iscas.c17())
        for out, (t, pair) in report.pairs.items():
            result = sim.simulate_transition(pair.v_prev, pair.v_next)
            assert result.waveforms[out].last_event_time == t


class TestSequentialFlow:
    KISS = """
.i 2
.o 2
.r st0
0- st0 st1 01
1- st0 st2 10
-1 st1 st2 11
-0 st1 st0 00
11 st2 st0 01
10 st2 st1 10
0- st2 st2 00
"""

    def test_fsm_pipeline(self):
        fsm = loads_kiss(self.KISS, "demo")
        logic = synthesize(fsm, fanin_limit=2)
        circuit = logic.circuit
        floating = compute_floating_delay(
            circuit,
            engine=BddEngine(),
            constraint=reachable_states_constraint(logic),
        )
        transition = compute_transition_delay(
            circuit,
            engine=BddEngine(),
            upper=floating.delay,
            constraint=transition_pair_constraint(logic),
        )
        assert transition.delay <= floating.delay
        if transition.pair is not None:
            # The witness is a genuine machine step.
            enc = logic.encoding
            s_prev = enc.decode(
                [transition.pair.v_prev[n] for n in logic.state_names]
            )
            i_prev = [transition.pair.v_prev[n] for n in logic.input_names]
            s_next = enc.decode(
                [transition.pair.v_next[n] for n in logic.state_names]
            )
            assert fsm.next_state(s_prev, i_prev) == s_next
