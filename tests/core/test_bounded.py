import pytest

from repro.boolfn import BddEngine, SatEngine
from repro.core import (
    BoundedAnalysis,
    compute_bounded_transition_delay,
    compute_floating_delay,
    compute_transition_delay,
    fixed_delay_bounds,
    monotone_speedup_bounds,
)
from repro.network import CircuitBuilder
from repro.circuits import fig1_circuit, fig2_circuit

from tests.helpers import c17, random_circuit


class TestBounds:
    def test_monotone_bounds(self):
        c = c17()
        bounds = monotone_speedup_bounds(c)
        assert bounds("G10") == (0, 1)

    def test_fixed_bounds(self):
        c = fig1_circuit()
        bounds = fixed_delay_bounds(c)
        assert bounds("nb3") == (3, 3)

    def test_bad_bounds_rejected(self):
        c = c17()
        with pytest.raises(ValueError):
            BoundedAnalysis(c, bounds=lambda name: (2, 1), engine=BddEngine())


class TestReductionToFixed:
    def test_degenerate_bounds_equal_fixed_analysis(self):
        for seed in range(6):
            c = random_circuit(seed + 40)
            fixed = compute_transition_delay(c, engine=BddEngine())
            degenerate = compute_bounded_transition_delay(
                c, bounds=fixed_delay_bounds(c), engine=BddEngine()
            )
            assert fixed.delay == degenerate.delay, seed

    def test_c17_degenerate(self):
        fixed = compute_transition_delay(c17(), engine=BddEngine())
        degenerate = compute_bounded_transition_delay(
            c17(), bounds=fixed_delay_bounds(c17()), engine=BddEngine()
        )
        assert fixed.delay == degenerate.delay == 3


class TestMonotoneSpeedup:
    def test_upper_bounds_fixed_delay(self):
        for seed in range(6):
            c = random_circuit(seed + 70)
            fixed = compute_transition_delay(c, engine=BddEngine())
            bounded = compute_bounded_transition_delay(c, engine=BddEngine())
            assert bounded.delay >= fixed.delay, seed

    def test_bounded_at_most_topological(self):
        for seed in range(6):
            c = random_circuit(seed + 90)
            bounded = compute_bounded_transition_delay(c, engine=BddEngine())
            assert bounded.delay <= c.topological_delay(), seed

    def test_fig1_speedup_restores_floating_delay(self):
        c = fig1_circuit()
        floating = compute_floating_delay(c, engine=BddEngine())
        bounded = compute_bounded_transition_delay(c, engine=BddEngine())
        assert bounded.delay == floating.delay == 5

    def test_fig2_conservative_bound_is_floating(self):
        c = fig2_circuit()
        bounded = compute_bounded_transition_delay(c, engine=BddEngine())
        assert bounded.delay == 5

    def test_engines_agree(self):
        for seed in range(4):
            c = random_circuit(seed + 500, num_gates=5)
            bdd = compute_bounded_transition_delay(c, engine=BddEngine())
            sat = compute_bounded_transition_delay(c, engine=SatEngine())
            assert bdd.delay == sat.delay, seed


class TestWitness:
    def test_witness_pair_returned(self):
        cert = compute_bounded_transition_delay(c17(), engine=BddEngine())
        assert cert.pair is not None
        assert cert.mode == "bounded-transition"
        assert cert.output in c17().outputs

    def test_no_outputs_rejected(self):
        b = CircuitBuilder("e")
        b.input("a")
        with pytest.raises(ValueError):
            compute_bounded_transition_delay(b.circuit)


class TestGuaranteedFunctions:
    def test_initial_and_final_partition(self):
        c = c17()
        engine = BddEngine()
        analysis = BoundedAnalysis(c, engine=engine)
        for out in c.outputs:
            u1, u0 = analysis.guaranteed_pair(out, -1)
            assert engine.is_tautology(engine.or_(u1, u0))
            u1, u0 = analysis.guaranteed_pair(out, 10_000)
            assert engine.is_tautology(engine.or_(u1, u0))

    def test_in_window_guarantees_disjoint(self):
        c = c17()
        engine = BddEngine()
        analysis = BoundedAnalysis(c, engine=engine)
        for out in c.outputs:
            for t in range(0, analysis.latest(out) + 1):
                u1, u0 = analysis.guaranteed_pair(out, t)
                assert engine.and_(u1, u0) == engine.const0
