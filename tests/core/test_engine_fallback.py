"""The auto policy's BDD-overflow -> SAT fallback (Sec. V-G pragmatics)."""

import pytest

from repro.boolfn import BddEngine, BddOverflow
from repro.boolfn.interface import SatEngine, make_engine
from repro.core import (
    compute_bounded_transition_delay,
    compute_floating_delay,
    compute_transition_delay,
)
from repro.core.floating import with_bdd_fallback
from repro.circuits import array_multiplier

from tests.helpers import c17


class TestWithBddFallback:
    def test_success_passes_through(self):
        result = with_bdd_fallback(lambda eng: 42, None, "auto")
        assert result == 42

    def test_overflow_retries_with_sat(self):
        calls = []

        def compute(engine):
            calls.append(engine)
            if engine is None:
                raise BddOverflow("boom")
            return engine.name

        assert with_bdd_fallback(compute, None, "auto") == "sat"
        assert calls[0] is None and isinstance(calls[1], SatEngine)

    def test_explicit_engine_not_retried(self):
        def compute(engine):
            raise BddOverflow("boom")

        with pytest.raises(BddOverflow):
            with_bdd_fallback(compute, BddEngine(), "auto")

    def test_non_auto_name_not_retried(self):
        def compute(engine):
            raise BddOverflow("boom")

        with pytest.raises(BddOverflow):
            with_bdd_fallback(compute, None, "bdd")


class TestEndToEndFallback:
    def test_transition_on_capped_multiplier(self, monkeypatch):
        # Force a tiny BDD budget through make_engine's default path by
        # monkeypatching, then verify the auto flow still answers.
        import repro.boolfn.interface as interface

        original = interface.make_engine

        def tiny(engine="auto", circuit_size=0, max_bdd_nodes=None):
            return original(engine, circuit_size, max_bdd_nodes=20_000)

        monkeypatch.setattr(interface, "make_engine", tiny)
        monkeypatch.setattr(
            "repro.core.transition.make_engine", tiny
        )
        mult = array_multiplier(5)
        cert = compute_transition_delay(mult)
        reference = compute_transition_delay(mult, engine=SatEngine())
        assert cert.delay == reference.delay

    def test_explicit_bdd_raises_on_overflow(self):
        mult = array_multiplier(8)
        with pytest.raises(BddOverflow):
            compute_floating_delay(
                mult, engine=BddEngine(max_nodes=10_000)
            )

    def test_auto_small_circuit_stays_on_bdd(self):
        cert = compute_floating_delay(c17())
        assert cert.delay == 3
