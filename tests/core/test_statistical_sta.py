import numpy as np
import pytest

from repro.core import (
    DiscreteDistribution,
    arrival_distributions,
    circuit_delay_distribution,
    fixed_delay_model,
    monte_carlo_topological,
    uniform_delay_model,
    uniform_variation,
)
from repro.network import CircuitBuilder

from tests.helpers import c17


class TestDiscreteDistribution:
    def test_point(self):
        d = DiscreteDistribution.point(5)
        assert d.mean == 5 and d.std == 0
        assert d.cdf(4) == 0.0 and d.cdf(5) == 1.0
        assert d.quantile(0.5) == 5

    def test_uniform(self):
        d = DiscreteDistribution.uniform(2, 4)
        assert abs(d.mean - 3.0) < 1e-12
        assert abs(d.cdf(3) - 2 / 3) < 1e-12
        assert d.quantile(1.0) == 4
        assert d.quantile(0.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(0, np.array([0.5, 0.4]))  # sums to 0.9
        with pytest.raises(ValueError):
            DiscreteDistribution.uniform(3, 1)
        with pytest.raises(ValueError):
            DiscreteDistribution.point(0).quantile(2.0)

    def test_add_is_convolution(self):
        a = DiscreteDistribution.uniform(0, 1)
        b = DiscreteDistribution.uniform(0, 1)
        s = a.add(b)
        assert s.offset == 0 and s.support_max == 2
        assert abs(s.pmf[1] - 0.5) < 1e-12  # P(sum = 1)

    def test_maximum_of_independent(self):
        a = DiscreteDistribution.uniform(0, 1)
        b = DiscreteDistribution.uniform(0, 1)
        m = a.maximum(b)
        # P(max = 0) = 1/4, P(max = 1) = 3/4
        assert abs(m.cdf(0) - 0.25) < 1e-12
        assert abs(m.cdf(1) - 1.0) < 1e-12

    def test_shift(self):
        d = DiscreteDistribution.uniform(0, 2).shift(3)
        assert d.offset == 3 and d.support_max == 5


class TestAnalyticalSta:
    def test_fixed_model_reduces_to_topological(self):
        circuit = c17()
        dist = circuit_delay_distribution(circuit, fixed_delay_model())
        assert dist.mean == circuit.topological_delay()
        assert dist.std == 0

    def test_exact_on_a_chain(self):
        # a -> buf -> buf: delay = sum of two independent uniforms on
        # {0,1,2}; compare against the exact convolution.
        b = CircuitBuilder("chain")
        a, = b.inputs("a")
        g1 = b.buf(a, name="g1")
        g2 = b.buf(g1, name="g2")
        b.output(g2)
        circuit = b.build()
        dist = circuit_delay_distribution(circuit, uniform_delay_model(1))
        exact = DiscreteDistribution.uniform(0, 2).add(
            DiscreteDistribution.uniform(0, 2)
        )
        assert dist.offset == exact.offset
        assert np.allclose(dist.pmf, exact.pmf)

    def test_exact_on_a_tree(self):
        # Two independent unit-delay branches into an AND: max of two
        # uniforms plus the AND's own delay.
        b = CircuitBuilder("tree")
        a, c = b.inputs("a", "c")
        g1 = b.buf(a, name="g1")
        g2 = b.buf(c, name="g2")
        g3 = b.and_(g1, g2, name="g3")
        b.output(g3)
        circuit = b.build()
        dist = circuit_delay_distribution(circuit, uniform_delay_model(1))
        u = DiscreteDistribution.uniform(0, 2)
        exact = u.maximum(u).add(u)
        assert np.allclose(dist.pmf, exact.pmf)

    def test_against_monte_carlo(self):
        circuit = c17()
        analytic = circuit_delay_distribution(circuit, uniform_delay_model(1))
        sampled = monte_carlo_topological(
            circuit, num_samples=400, delay_model=uniform_variation(1),
            seed=11,
        )
        # Means agree within sampling noise; the analytic support bounds
        # every sample.
        assert abs(analytic.mean - sampled.mean) < 0.4
        assert analytic.offset <= sampled.min
        assert analytic.support_max >= sampled.max

    def test_arrival_distributions_monotone_along_paths(self):
        circuit = c17()
        arrivals = arrival_distributions(circuit, uniform_delay_model(1))
        for node in circuit.nodes():
            for fanin in node.fanins:
                assert (
                    arrivals[node.name].mean >= arrivals[fanin].mean
                )

    def test_no_outputs_rejected(self):
        b = CircuitBuilder("e")
        b.input("a")
        with pytest.raises(ValueError):
            circuit_delay_distribution(b.circuit)
