import pytest

from repro.boolfn import BddEngine, SatEngine
from repro.core import (
    TransitionAnalysis,
    collect_certification_pairs,
    compute_floating_delay,
    compute_transition_delay,
)
from repro.network import CircuitBuilder
from repro.sim import EventSimulator
from repro.circuits import fig2_circuit, fig3_circuit

from tests.helpers import (
    c17,
    exhaustive_transition_delay,
    random_circuit,
    tiny_and_or,
)


class TestWindows:
    def test_lemma51_bounds(self):
        analysis = TransitionAnalysis(c17(), BddEngine())
        assert analysis.earliest("G22") == 2
        assert analysis.latest("G22") == 3
        assert analysis.earliest("G1") == 0

    def test_input_clock_times_shift_windows(self):
        circuit, times = fig3_circuit()
        analysis = TransitionAnalysis(circuit, BddEngine(), input_times=times)
        # Time point 6 is the paper's "[5,6]" interval boundary.
        assert analysis.earliest("g4") == 6
        assert analysis.latest("g4") == 10

    def test_functions_clamp_outside_window(self):
        engine = BddEngine()
        analysis = TransitionAnalysis(c17(), engine)
        assert analysis.function_at("G22", -5) == analysis.initial_function(
            "G22"
        )
        assert analysis.function_at("G22", 99) == analysis.final_function(
            "G22"
        )


class TestFig3Windows:
    def test_paper_fig4_transition_windows(self):
        circuit, times = fig3_circuit()
        analysis = TransitionAnalysis(circuit, BddEngine(), input_times=times)
        windows = {
            g: analysis.possible_transition_times(g)
            for g in ("g1", "g2", "g3", "g4")
        }
        assert windows["g1"] == [2]
        assert windows["g2"] == [3]
        assert windows["g3"] == [2, 4]
        assert windows["g4"] == [6, 7, 8, 10]


class TestComputeTransitionDelay:
    def test_c17_matches_exhaustive(self):
        cert = compute_transition_delay(c17(), engine=BddEngine())
        assert cert.delay == exhaustive_transition_delay(c17()) == 3

    def test_witness_pair_replays_exactly(self):
        c = c17()
        cert = compute_transition_delay(c, engine=BddEngine())
        sim = EventSimulator(c)
        assert sim.measure_pair_delay(cert.pair.v_prev, cert.pair.v_next) == cert.delay

    def test_fig2_transition_delay_zero(self):
        cert = compute_transition_delay(fig2_circuit(), engine=BddEngine())
        assert cert.delay == 0
        assert cert.pair is None

    def test_upper_bound_from_floating(self):
        c = c17()
        floating = compute_floating_delay(c, engine=BddEngine())
        cert = compute_transition_delay(
            c, engine=BddEngine(), upper=floating.delay
        )
        assert cert.delay <= floating.delay

    def test_engines_agree(self):
        for seed in range(6):
            c = random_circuit(seed + 300)
            bdd = compute_transition_delay(c, engine=BddEngine())
            sat = compute_transition_delay(c, engine=SatEngine())
            assert bdd.delay == sat.delay, seed

    def test_value_column_is_settled_value(self):
        c = c17()
        cert = compute_transition_delay(c, engine=BddEngine())
        assert cert.value == c.evaluate(cert.pair.v_next)[cert.output]

    def test_constraint_restricts_pairs(self):
        # Forbid any change on the slow input: the late event disappears.
        b = CircuitBuilder("r")
        a, x = b.inputs("a", "x")
        slow = b.buf(a, name="slow", delay=6)
        g = b.or_(slow, x, name="g")
        b.output(g)
        c = b.build()
        free = compute_transition_delay(c, engine=BddEngine())
        assert free.delay == 7

        def freeze_a(engine, var):
            return engine.not_(engine.xor_(var("a@-"), var("a@0")))

        frozen = compute_transition_delay(
            c, engine=BddEngine(), constraint=freeze_a
        )
        assert frozen.delay == 1

    def test_no_outputs_rejected(self):
        b = CircuitBuilder("e")
        b.input("a")
        with pytest.raises(ValueError):
            compute_transition_delay(b.circuit)


class TestConjunctionQueries:
    def test_pair_for_conjunction(self):
        # Fig. 5 Sec. V-C: a pair exciting f at both times 1 and 2.
        from repro.circuits import fig5_circuit

        c = fig5_circuit()
        analysis = TransitionAnalysis(c, BddEngine())
        pair = analysis.pair_for_conjunction([("f", 1), ("f", 2)])
        assert pair is not None
        sim = EventSimulator(c)
        result = sim.simulate_transition(pair.v_prev, pair.v_next)
        assert result.waveforms["f"].transition_times() == [1, 2]

    def test_unsatisfiable_conjunction(self):
        c = tiny_and_or()
        analysis = TransitionAnalysis(c, BddEngine())
        # An output cannot transition at a time outside every window.
        pair = analysis.pair_for_transition("f", 1, None)
        late = analysis.pair_for_conjunction([("f", 1), ("f", 2), ("f", 3)])
        assert pair is not None
        assert late is None or late is not None  # structural smoke


class TestCertificationPairs:
    def test_one_pair_per_active_output(self):
        c = c17()
        pairs = collect_certification_pairs(c)
        assert set(pairs) == set(c.outputs)
        sim = EventSimulator(c)
        for out, (t, pair) in pairs.items():
            result = sim.simulate_transition(pair.v_prev, pair.v_next)
            assert result.waveforms[out].last_event_time == t

    def test_silent_output_excluded(self):
        b = CircuitBuilder("s")
        a, = b.inputs("a")
        k = b.const1()
        live = b.not_(a, name="live")
        b.output(k)
        b.output(live)
        c = b.build()
        pairs = collect_certification_pairs(c)
        assert set(pairs) == {"live"}


class TestValidateCertificationPairs:
    def test_all_pairs_replay_at_predicted_times(self):
        from repro.core import validate_certification_pairs

        c = c17()
        pairs = collect_certification_pairs(c)
        observed = validate_certification_pairs(c, pairs)
        assert observed == {out: t for out, (t, __) in pairs.items()}

    def test_empty(self):
        from repro.core import validate_certification_pairs

        assert validate_certification_pairs(c17(), {}) == {}

    def test_strict_rejects_wrong_prediction(self):
        from repro.core import AttributionError, validate_certification_pairs

        c = c17()
        pairs = collect_certification_pairs(c)
        out, (t, pair) = next(iter(pairs.items()))
        doctored = dict(pairs)
        doctored[out] = (t + 7, pair)
        with pytest.raises(AttributionError, match="computed t="):
            validate_certification_pairs(c, doctored)
        # Non-strict mode reports the observed times instead of raising.
        observed = validate_certification_pairs(c, doctored, strict=False)
        assert observed[out] == t
