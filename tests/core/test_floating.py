import pytest

from repro.boolfn import BddEngine, SatEngine
from repro.core import FloatingAnalysis, compute_floating_delay
from repro.network import CircuitBuilder
from repro.circuits import carry_skip_adder, fig2_circuit

from tests.helpers import c17, random_circuit, tiny_and_or


@pytest.fixture(params=["bdd", "sat"])
def engine_name(request):
    return request.param


def make_engine_for(name):
    return BddEngine() if name == "bdd" else SatEngine()


class TestFloatingAnalysis:
    def test_windows(self):
        analysis = FloatingAnalysis(c17(), BddEngine())
        assert analysis.earliest("G1") == 0 == analysis.latest("G1")
        assert analysis.earliest("G22") == 2
        assert analysis.latest("G22") == 3

    def test_settled_pair_partitions_at_horizon(self):
        c = c17()
        engine = BddEngine()
        analysis = FloatingAnalysis(c, engine)
        for out in c.outputs:
            s1, s0 = analysis.settled_pair(out, analysis.latest(out))
            assert engine.is_tautology(engine.or_(s1, s0))
            assert engine.and_(s1, s0) == engine.const0

    def test_unsettled_before_earliest(self):
        c = c17()
        engine = BddEngine()
        analysis = FloatingAnalysis(c, engine)
        assert analysis.settled("G22", 1) == engine.const0

    def test_settling_is_monotone(self):
        c = tiny_and_or()
        engine = BddEngine()
        analysis = FloatingAnalysis(c, engine)
        previous = engine.const0
        for t in range(0, analysis.latest("f") + 1):
            settled = analysis.settled("f", t)
            # previous implies settled
            assert engine.is_tautology(
                engine.or_(engine.not_(previous), settled)
            )
            previous = settled


class TestComputeFloatingDelay:
    def test_c17(self, engine_name):
        cert = compute_floating_delay(c17(), engine=make_engine_for(engine_name))
        assert cert.delay == 3
        assert cert.mode == "floating"
        assert cert.witness is not None

    def test_fig2_is_five_with_witness_a1(self, engine_name):
        cert = compute_floating_delay(
            fig2_circuit(), engine=make_engine_for(engine_name)
        )
        assert cert.delay == 5
        assert cert.witness == {"a": True}

    def test_carry_skip_false_path_detected(self, engine_name):
        c = carry_skip_adder(8, 4)
        cert = compute_floating_delay(c, engine=make_engine_for(engine_name))
        assert cert.delay < c.topological_delay()

    def test_linear_and_binary_agree(self):
        for seed in range(8):
            c = random_circuit(seed, num_inputs=3, num_gates=7)
            linear = compute_floating_delay(c, engine=BddEngine())
            binary = compute_floating_delay(
                c, engine=BddEngine(), search="binary"
            )
            assert linear.delay == binary.delay, seed

    def test_engines_agree(self):
        for seed in range(8):
            c = random_circuit(seed + 100)
            bdd = compute_floating_delay(c, engine=BddEngine())
            sat = compute_floating_delay(c, engine=SatEngine())
            assert bdd.delay == sat.delay, seed

    def test_witness_value_is_outputs_final_value(self):
        cert = compute_floating_delay(c17(), engine=BddEngine())
        c = c17()
        assert cert.value == c.evaluate(cert.witness)[cert.output]

    def test_no_outputs_rejected(self):
        b = CircuitBuilder("e")
        b.input("a")
        with pytest.raises(ValueError):
            compute_floating_delay(b.circuit)

    def test_constant_circuit(self):
        b = CircuitBuilder("k")
        b.input("a")
        k = b.const1()
        b.output(k)
        cert = compute_floating_delay(b.build(), engine=BddEngine())
        assert cert.delay == 0

    def test_unsatisfiable_care_set(self):
        cert = compute_floating_delay(
            c17(),
            engine=BddEngine(),
            constraint=lambda eng, var: eng.const0,
        )
        assert cert.delay == 0

    def test_care_set_restriction_can_lower_delay(self):
        # Restrict to vectors where x=0: the slow path is dead.
        b = CircuitBuilder("r")
        a, x = b.inputs("a", "x")
        slow = b.buf(a, name="slow", delay=6)
        g = b.and_(slow, x, name="g")
        b.output(g)
        c = b.build()
        unrestricted = compute_floating_delay(c, engine=BddEngine())
        restricted = compute_floating_delay(
            c,
            engine=BddEngine(),
            constraint=lambda eng, var: eng.not_(var("x")),
        )
        assert unrestricted.delay == 7
        assert restricted.delay < unrestricted.delay

    def test_upper_bound_respected(self):
        cert = compute_floating_delay(c17(), engine=BddEngine(), upper=3)
        assert cert.delay == 3
