import pytest

from repro.boolfn import BddEngine
from repro.core import (
    PathFault,
    PathFaultGenerator,
    TestStrength,
    validate_test_by_fault_injection,
    validate_tests_by_fault_injection,
)
from repro.network import CircuitBuilder
from repro.sim import EventSimulator
from repro.circuits import carry_skip_adder, fig2_circuit, parity_tree

from tests.helpers import c17


def and_or_chain():
    """p = AND(a, b); q = OR(p, c) — one clean testable path a->p->q."""
    b = CircuitBuilder("chain")
    a, bb, c = b.inputs("a", "b", "c")
    p = b.and_(a, bb, name="p")
    q = b.or_(p, c, name="q")
    b.output(q)
    return b.build()


class TestSinglePath:
    def test_robust_test_found(self):
        circuit = and_or_chain()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        test = gen.generate(PathFault(["a", "p", "q"], rising=True))
        assert test is not None
        # Side conditions: b noncontrolling (1) in both vectors (the
        # on-path input rises to noncontrolling at the AND); c final 0.
        assert test.pair.v_prev["b"] and test.pair.v_next["b"]
        assert not test.pair.v_next["c"]
        assert not test.pair.v_prev["a"] and test.pair.v_next["a"]

    def test_falling_direction(self):
        circuit = and_or_chain()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        test = gen.generate(PathFault(["a", "p", "q"], rising=False))
        assert test is not None
        assert test.pair.v_prev["a"] and not test.pair.v_next["a"]

    def test_transition_rides_the_path(self):
        circuit = and_or_chain()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        test = gen.generate(
            PathFault(["a", "p", "q"], rising=True), strong=True
        )
        sim = EventSimulator(circuit)
        result = sim.simulate_transition(test.pair.v_prev, test.pair.v_next)
        assert result.waveforms["q"].last_event_time == 2

    def test_fault_injection_validation(self):
        circuit = and_or_chain()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        test = gen.generate(
            PathFault(["a", "p", "q"], rising=True), strong=True
        )
        assert validate_test_by_fault_injection(circuit, test)

    def test_untestable_robust_path(self):
        # g = AND(a, NOT a): the side input can never hold steady
        # noncontrolling while a rises.
        b = CircuitBuilder("u")
        a, = b.inputs("a")
        na = b.not_(a, name="na")
        g = b.and_(a, na, name="g")
        b.output(g)
        circuit = b.build()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        assert gen.generate(PathFault(["a", "g"], rising=True)) is None

    def test_fig2_critical_path_untestable(self):
        # The statically sensitizable path {a,...,d,e} of Fig. 2 admits no
        # robust (nor non-robust-with-steady) launch: b = NOT(x3) always
        # moves against the on-path transition.
        circuit = fig2_circuit()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        fault = PathFault(["a", "x1", "x2", "x3", "d", "e"], rising=True)
        assert gen.generate(fault, TestStrength.ROBUST) is None

    def test_path_validation_errors(self):
        circuit = and_or_chain()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        with pytest.raises(ValueError):
            gen.generate(PathFault(["p", "q"], rising=True))
        with pytest.raises(ValueError):
            gen.generate(PathFault(["a", "q"], rising=True))


class TestXorPaths:
    def test_parity_tree_paths_all_testable(self):
        circuit = parity_tree(4)
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        coverage = gen.generate_for_longest_paths(4, strong=True)
        assert coverage.coverage == 1.0
        for test in coverage.tests:
            assert validate_test_by_fault_injection(circuit, test)

    def test_xor_robust_requires_steady_sides(self):
        b = CircuitBuilder("x")
        a, c = b.inputs("a", "c")
        g = b.xor_(a, c, name="g")
        b.output(g)
        circuit = b.build()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        test = gen.generate(PathFault(["a", "g"], rising=True))
        assert test is not None
        assert test.pair.v_prev["c"] == test.pair.v_next["c"]


class TestBatchValidation:
    def test_batch_matches_per_test(self):
        circuit = c17()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        coverage = gen.generate_for_longest_paths(4, strong=True)
        assert coverage.tests
        batch = validate_tests_by_fault_injection(circuit, coverage.tests)
        assert batch == [
            validate_test_by_fault_injection(circuit, test)
            for test in coverage.tests
        ]

    def test_empty_batch(self):
        assert validate_tests_by_fault_injection(c17(), []) == []

    def test_all_strong_tests_validate(self):
        circuit = parity_tree(4)
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        coverage = gen.generate_for_longest_paths(4, strong=True)
        assert validate_tests_by_fault_injection(circuit, coverage.tests) == [
            True
        ] * len(coverage.tests)


class TestCoverageRuns:
    def test_c17_longest_paths(self):
        circuit = c17()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        coverage = gen.generate_for_longest_paths(5)
        assert coverage.total == 10
        assert 0.0 <= coverage.coverage <= 1.0
        assert coverage.tests, "c17 critical paths must be testable"
        for test in coverage.tests:
            # Non-robust sanity on every returned pair: replaying it makes
            # the path output move.
            sim = EventSimulator(circuit)
            result = sim.simulate_transition(
                test.pair.v_prev, test.pair.v_next
            )
            assert not result.waveforms[test.fault.path[-1]].is_stable()

    def test_skip_adder_false_paths_untestable(self):
        # The full ripple chain of a carry-skip adder is false; its robust
        # (and non-robust) tests must not exist.
        circuit = carry_skip_adder(8, 4)
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        from repro.network import k_longest_paths

        (length, path), = k_longest_paths(circuit, 1)
        assert length == circuit.topological_delay()
        fault = PathFault(list(path), rising=True)
        assert gen.generate(fault, TestStrength.NON_ROBUST) is None

    def test_non_robust_superset_of_robust(self):
        circuit = c17()
        gen = PathFaultGenerator(circuit, engine=BddEngine())
        from repro.network import k_longest_paths

        for __, path in k_longest_paths(circuit, 6):
            for rising in (True, False):
                fault = PathFault(list(path), rising)
                robust = gen.generate(fault, TestStrength.ROBUST)
                non_robust = gen.generate(fault, TestStrength.NON_ROBUST)
                if robust is not None:
                    assert non_robust is not None
