from repro.boolfn import BddEngine
from repro.core import (
    TransitionAnalysis,
    build_all_functions,
    compute_transition_delay,
    suppression_plan,
)
from repro.circuits import carry_skip_adder

from tests.helpers import c17


class TestSuppressionPlan:
    def test_high_delta_suppresses_more(self):
        c = carry_skip_adder(8, 4)
        omega = c.topological_delay()
        tight = suppression_plan(c, omega)
        loose = suppression_plan(c, 1)
        assert tight.total_needed <= loose.total_needed
        assert tight.suppressed >= 0
        assert loose.fraction_suppressed == 0.0

    def test_needed_ranges_within_windows(self):
        c = c17()
        plan = suppression_plan(c, 3)
        analysis = TransitionAnalysis(c, BddEngine())
        for name, (lo, hi) in plan.ranges.items():
            if lo > hi:
                continue
            assert lo >= analysis.earliest(name)
            assert hi <= analysis.latest(name)

    def test_rule_matches_paper(self):
        # Only g_t with t + w_g >= delta - 1 are needed.
        c = c17()
        plan = suppression_plan(c, 3)
        residual = c.residual_delays()
        for name, (lo, hi) in plan.ranges.items():
            if lo > hi:
                continue
            assert lo + residual[name] >= plan.delta - 1


class TestLazySubsumesSuppression:
    def test_lazy_builds_at_most_plan(self):
        c = carry_skip_adder(8, 4)
        analysis = TransitionAnalysis(c, BddEngine())
        cert = compute_transition_delay(c, analysis=analysis)
        lazy_built = analysis.num_functions()
        full_analysis = TransitionAnalysis(c, BddEngine())
        full = build_all_functions(full_analysis)
        assert lazy_built <= full
        assert cert.extra["functions_built"] == lazy_built

    def test_answers_identical_with_and_without_laziness(self):
        c = carry_skip_adder(8, 4)
        eager_analysis = TransitionAnalysis(c, BddEngine())
        build_all_functions(eager_analysis)
        eager = compute_transition_delay(c, analysis=eager_analysis)
        lazy = compute_transition_delay(c, engine=BddEngine())
        assert eager.delay == lazy.delay
