"""Property tests for the runtime refactor's equivalence claims:

* every ``search`` strategy (linear / binary / ascending) computes the
  same floating delay,
* cached recomputation returns the same certificate as a cold run,
* ``jobs=1`` and ``jobs=4`` certification-pair collection agree pair for
  pair (exercised symbolically at the shard level; the process-pool path
  itself is covered by ``tests/runtime/test_parallel.py``).
"""

from hypothesis import given, settings, strategies as st

from repro.boolfn import BddEngine
from repro.core import (
    TransitionAnalysis,
    collect_certification_pairs,
    compute_floating_delay,
    compute_transition_delay,
    pairs_for_outputs,
)
from repro.runtime import DelayCache

from tests.helpers import exhaustive_floating_delay, random_circuit

SEEDS = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS)
def test_search_strategies_agree_on_the_floating_delay(seed):
    circuit = random_circuit(seed, num_inputs=3, num_gates=6)
    delays = {
        search: compute_floating_delay(
            circuit, engine=BddEngine(), search=search
        ).delay
        for search in ("linear", "binary", "ascending")
    }
    assert len(set(delays.values())) == 1, delays
    # The integer-speedup oracle is a lower bound on the floating delay
    # (same convention as tests/test_properties.py).
    assert exhaustive_floating_delay(circuit) <= delays["linear"]


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS)
def test_cached_recomputation_is_identical(seed):
    circuit = random_circuit(seed, num_inputs=3, num_gates=6)
    reference = compute_floating_delay(circuit)
    cache = DelayCache()
    cold = compute_floating_delay(circuit, cache=cache)
    warm = compute_floating_delay(circuit, cache=cache)
    for cert in (cold, warm):
        assert cert.delay == reference.delay
        assert cert.witness == reference.witness
        assert cert.checks == reference.checks


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS)
def test_cached_transition_delay_is_identical(seed):
    circuit = random_circuit(seed, num_inputs=3, num_gates=6)
    reference = compute_transition_delay(circuit)
    cache = DelayCache()
    cold = compute_transition_delay(circuit, cache=cache)
    warm = compute_transition_delay(circuit, cache=cache)
    for cert in (cold, warm):
        assert cert.delay == reference.delay
        assert cert.output == reference.output
        if reference.pair is not None:
            assert cert.pair.v_prev == reference.pair.v_prev
            assert cert.pair.v_next == reference.pair.v_next


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_chunked_pair_queries_match_the_serial_collection(seed):
    """The sharded path splits the outputs across fresh analyses; with the
    canonical variable order each chunk must reproduce exactly the serial
    per-output (time, pair) results."""
    circuit = random_circuit(seed, num_inputs=3, num_gates=6)
    serial = collect_certification_pairs(circuit)
    merged = {}
    for chunk in (circuit.outputs[0::2], circuit.outputs[1::2]):
        if not chunk:
            continue
        analysis = TransitionAnalysis(circuit)
        merged.update(
            pairs_for_outputs(analysis, analysis.engine.const1, chunk)
        )
    assert merged.keys() == serial.keys()
    for out in serial:
        t_serial, pair_serial = serial[out]
        t_merged, pair_merged = merged[out]
        assert t_serial == t_merged
        assert pair_serial.v_prev == pair_merged.v_prev
        assert pair_serial.v_next == pair_merged.v_next
