"""The Sec. V-D query form: "is the delay >= delta?"."""

import pytest

from repro.boolfn import BddEngine
from repro.core import (
    compute_transition_delay,
    query_delay_at_least,
)
from repro.sim import EventSimulator
from repro.circuits import carry_skip_adder, fig2_circuit

from tests.helpers import c17, random_circuit


class TestQuery:
    def test_positive_at_true_delay(self):
        circuit = c17()
        pair = query_delay_at_least(circuit, 3, engine=BddEngine())
        assert pair is not None
        sim = EventSimulator(circuit)
        assert sim.measure_pair_delay(pair.v_prev, pair.v_next) >= 3

    def test_negative_above_true_delay(self):
        circuit = c17()
        assert query_delay_at_least(circuit, 4, engine=BddEngine()) is None

    def test_threshold_consistent_with_computed_delay(self):
        for seed in range(8):
            circuit = random_circuit(seed + 700, num_inputs=3, num_gates=6)
            cert = compute_transition_delay(circuit, engine=BddEngine())
            if cert.delay >= 1:
                assert query_delay_at_least(
                    circuit, cert.delay, engine=BddEngine()
                ) is not None
            assert query_delay_at_least(
                circuit, cert.delay + 1, engine=BddEngine()
            ) is None

    def test_fig2_any_threshold_negative(self):
        circuit = fig2_circuit()
        for delta in (1, 3, 5):
            assert query_delay_at_least(
                circuit, delta, engine=BddEngine()
            ) is None

    def test_false_path_threshold_negative(self):
        circuit = carry_skip_adder(8, 4)
        omega = circuit.topological_delay()
        # No pair reaches the false graphical delay...
        assert query_delay_at_least(
            circuit, omega, engine=BddEngine()
        ) is None
        # ...but the true delay is reachable.
        cert = compute_transition_delay(circuit, engine=BddEngine())
        assert query_delay_at_least(
            circuit, cert.delay, engine=BddEngine()
        ) is not None

    def test_rejects_non_positive_delta(self):
        with pytest.raises(ValueError):
            query_delay_at_least(c17(), 0, engine=BddEngine())
