from repro.boolfn import BddEngine
from repro.core import (
    compute_transition_delay,
    transition_delay_lower_bound,
)
from repro.sim import EventSimulator
from repro.circuits import array_multiplier, carry_skip_adder

from tests.helpers import c17, random_circuit


class TestLowerBound:
    def test_bound_is_witnessed(self):
        circuit = carry_skip_adder(8, 4)
        result = transition_delay_lower_bound(circuit, random_pairs=32)
        assert result.pair is not None
        sim = EventSimulator(circuit)
        assert (
            sim.measure_pair_delay(result.pair.v_prev, result.pair.v_next)
            == result.delay
        )

    def test_bound_never_exceeds_exact(self):
        for seed in range(6):
            circuit = random_circuit(seed + 60, num_inputs=3, num_gates=6)
            exact = compute_transition_delay(circuit, engine=BddEngine())
            bound = transition_delay_lower_bound(
                circuit, random_pairs=32, climbs=3, climb_steps=60
            )
            assert bound.delay <= exact.delay, seed

    def test_tight_on_c17(self):
        # The pair space is tiny; the search finds the exact delay.
        bound = transition_delay_lower_bound(c17(), random_pairs=64)
        exact = compute_transition_delay(c17(), engine=BddEngine())
        assert bound.delay == exact.delay

    def test_deterministic_given_seed(self):
        circuit = carry_skip_adder(8, 4)
        left = transition_delay_lower_bound(circuit, seed=5)
        right = transition_delay_lower_bound(circuit, seed=5)
        assert left.delay == right.delay
        assert left.pairs_simulated == right.pairs_simulated

    def test_multiplier_scales(self):
        # The exact computation is out of pure-Python reach on mult16;
        # the simulation bound is cheap and substantial.
        circuit = array_multiplier(8)
        bound = transition_delay_lower_bound(
            circuit, random_pairs=24, climbs=3, climb_steps=80
        )
        assert bound.delay >= circuit.topological_delay() // 2

    def test_describe(self):
        circuit = c17()
        bound = transition_delay_lower_bound(circuit, random_pairs=16)
        text = bound.describe(circuit.inputs)
        assert "lower bound" in text and "pairs tried" in text
