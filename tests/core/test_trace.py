from repro.boolfn import BddEngine
from repro.core import (
    VectorPair,
    compute_transition_delay,
    describe_certificate_path,
    trace_critical_chain,
)
from repro.network import path_length
from repro.circuits import carry_skip_adder, fig2_circuit

from tests.helpers import c17, random_circuit


class TestTraceChain:
    def test_chain_ends_at_computed_delay(self):
        circuit = c17()
        cert = compute_transition_delay(circuit, engine=BddEngine())
        chain = trace_critical_chain(circuit, cert.pair, output=cert.output)
        assert chain is not None
        assert chain.end_time == cert.delay
        assert chain.path[-1] == cert.output

    def test_chain_is_a_structural_path(self):
        circuit = c17()
        cert = compute_transition_delay(circuit, engine=BddEngine())
        chain = trace_critical_chain(circuit, cert.pair, output=cert.output)
        for upstream, downstream in zip(chain.path, chain.path[1:]):
            assert upstream in circuit.node(downstream).fanins

    def test_chain_times_consistent_with_delays(self):
        circuit = carry_skip_adder(8, 4)
        cert = compute_transition_delay(circuit, engine=BddEngine())
        chain = trace_critical_chain(circuit, cert.pair, output=cert.output)
        events = chain.events
        for (up, t_up, __), (down, t_down, __) in zip(events, events[1:]):
            assert t_down - t_up == circuit.node(down).delay

    def test_full_chain_starts_at_an_input(self):
        circuit = c17()
        cert = compute_transition_delay(circuit, engine=BddEngine())
        chain = trace_critical_chain(circuit, cert.pair, output=cert.output)
        assert chain.path[0] in circuit.inputs
        # The chain length equals the path's graphical length here.
        assert path_length(circuit, chain.path) == cert.delay

    def test_no_event_returns_none(self):
        circuit = fig2_circuit()
        pair = VectorPair({"a": False}, {"a": True})
        assert trace_critical_chain(circuit, pair) is None

    def test_default_output_selection(self):
        circuit = c17()
        cert = compute_transition_delay(circuit, engine=BddEngine())
        chain = trace_critical_chain(circuit, cert.pair)
        assert chain.end_time == cert.delay

    def test_random_circuits_chains_valid(self):
        for seed in range(8):
            circuit = random_circuit(seed + 50, num_inputs=3, num_gates=6)
            cert = compute_transition_delay(circuit, engine=BddEngine())
            if cert.pair is None:
                continue
            chain = trace_critical_chain(
                circuit, cert.pair, output=cert.output
            )
            assert chain is not None
            assert chain.end_time == cert.delay
            for up, down in zip(chain.path, chain.path[1:]):
                assert up in circuit.node(down).fanins

    def test_render_and_describe(self):
        circuit = c17()
        cert = compute_transition_delay(circuit, engine=BddEngine())
        chain = trace_critical_chain(circuit, cert.pair, output=cert.output)
        text = chain.render()
        assert "->" in text and "@" in text
        described = describe_certificate_path(circuit, cert)
        assert "critical chain" in described

    def test_describe_without_pair(self):
        from repro.core import DelayCertificate

        cert = DelayCertificate(mode="transition", delay=0)
        assert "no output event" in describe_certificate_path(c17(), cert)
