import pytest

from repro.core import (
    StatisticalTimingResult,
    VectorPair,
    monte_carlo_delay,
    monte_carlo_topological,
    speedup_only_variation,
    uniform_variation,
)

from tests.helpers import c17


def c17_pair():
    return VectorPair(
        {"G1": False, "G2": True, "G3": False, "G6": True, "G7": False},
        {"G1": True, "G2": True, "G3": True, "G6": False, "G7": True},
    )


class TestDelayModels:
    def test_uniform_variation_clips_at_zero(self):
        import random

        model = uniform_variation(3)
        rng = random.Random(0)
        samples = [model(rng, 1) for __ in range(200)]
        assert min(samples) >= 0
        assert max(samples) <= 4

    def test_speedup_only_never_exceeds_nominal(self):
        import random

        model = speedup_only_variation()
        rng = random.Random(0)
        assert all(model(rng, 5) <= 5 for __ in range(100))


class TestMonteCarloDelay:
    def test_deterministic_given_seed(self):
        left = monte_carlo_delay(c17(), [c17_pair()], num_samples=20, seed=3)
        right = monte_carlo_delay(c17(), [c17_pair()], num_samples=20, seed=3)
        assert left.samples == right.samples

    def test_zero_spread_reproduces_nominal(self):
        result = monte_carlo_delay(
            c17(),
            [c17_pair()],
            num_samples=5,
            delay_model=uniform_variation(0),
        )
        assert len(set(result.samples)) == 1

    def test_speedup_only_never_beats_nominal_delay(self):
        from repro.sim import EventSimulator

        pair = c17_pair()
        nominal = EventSimulator(c17()).measure_pair_delay(
            pair.v_prev, pair.v_next
        )
        result = monte_carlo_delay(
            c17(),
            [pair],
            num_samples=40,
            delay_model=speedup_only_variation(),
        )
        assert result.max <= nominal

    def test_requires_pairs(self):
        with pytest.raises(ValueError):
            monte_carlo_delay(c17(), [], num_samples=3)


class TestStatisticsObject:
    def make(self):
        return StatisticalTimingResult([3, 5, 4, 4, 6, 3, 5, 4], pairs_used=1)

    def test_moments(self):
        stats = self.make()
        assert stats.min == 3 and stats.max == 6
        assert abs(stats.mean - 4.25) < 1e-9
        assert stats.std > 0

    def test_percentiles(self):
        stats = self.make()
        assert stats.percentile(0) == 3
        assert stats.percentile(50) == 4
        assert stats.percentile(100) == 6
        with pytest.raises(ValueError):
            stats.percentile(120)

    def test_yield_curve_monotone(self):
        stats = self.make()
        curve = stats.yield_curve()
        values = [y for __, y in curve]
        assert values == sorted(values)
        assert curve[0][0] == 3 and curve[-1][0] == 6
        assert stats.yield_at(6) == 1.0
        assert stats.yield_at(2) == 0.0

    def test_yield_curve_endpoints_agree_with_yield_at(self):
        # The Sec. VII speed binning between gamma and delta: the curve's
        # endpoint values must be exactly yield_at(gamma) / yield_at(delta).
        stats = self.make()
        gamma, delta = 2, 7
        curve = stats.yield_curve(gamma, delta)
        assert curve[0] == (gamma, stats.yield_at(gamma))
        assert curve[-1] == (delta, stats.yield_at(delta))
        assert len(curve) == delta - gamma + 1

    def test_yield_curve_rejects_reversed_bounds(self):
        stats = self.make()
        with pytest.raises(ValueError, match="lo=6 > hi=3"):
            stats.yield_curve(6, 3)
        # Degenerate single-point range is fine.
        assert stats.yield_curve(4, 4) == [(4, stats.yield_at(4))]

    def test_empty_samples_raise_clear_error(self):
        with pytest.raises(ValueError, match="at least one sample"):
            StatisticalTimingResult([], pairs_used=0)


class TestTopologicalMonteCarlo:
    def test_distribution_centred_near_nominal(self):
        # +-1 variation on three levels of unit delay: delays in [0, 6].
        result = monte_carlo_topological(c17(), num_samples=60, seed=5)
        assert 0 <= result.min <= result.max <= 6
        assert result.pairs_used == 0
