"""The Sec. VIII mode-agreement condition: extending a floating witness
into a transition pair at exactly the floating delay."""

from repro.boolfn import BddEngine
from repro.core import (
    TransitionAnalysis,
    compute_floating_delay,
    compute_transition_delay,
    extend_floating_witness,
)
from repro.sim import EventSimulator
from repro.circuits import carry_skip_adder, fig2_circuit

from tests.helpers import c17, random_circuit


class TestExtension:
    def test_c17_witness_extends(self):
        circuit = c17()
        floating = compute_floating_delay(circuit, engine=BddEngine())
        pair = extend_floating_witness(circuit, floating)
        assert pair is not None
        # v_0 is pinned to the floating witness.
        assert pair.v_next == floating.witness
        # The pair really excites an event at the floating delay.
        sim = EventSimulator(circuit)
        assert sim.measure_pair_delay(pair.v_prev, pair.v_next) == (
            floating.delay
        )

    def test_extension_proves_mode_agreement(self):
        for seed in range(10):
            circuit = random_circuit(seed + 900, num_inputs=3, num_gates=6)
            floating = compute_floating_delay(circuit, engine=BddEngine())
            analysis = TransitionAnalysis(circuit, BddEngine())
            pair = extend_floating_witness(
                circuit, floating, analysis=analysis
            )
            transition = compute_transition_delay(
                circuit, upper=floating.delay, analysis=analysis
            )
            if pair is not None:
                assert transition.delay == floating.delay, seed

    def test_fig2_witness_does_not_extend(self):
        # Fig. 2: t.d. (0) < f.d. (5); no pair can excite the floating
        # event, so the sufficient condition must fail.
        circuit = fig2_circuit()
        floating = compute_floating_delay(circuit, engine=BddEngine())
        assert extend_floating_witness(circuit, floating) is None

    def test_carry_skip_extends(self):
        circuit = carry_skip_adder(8, 4)
        floating = compute_floating_delay(circuit, engine=BddEngine())
        pair = extend_floating_witness(circuit, floating)
        assert pair is not None
        sim = EventSimulator(circuit)
        assert sim.measure_pair_delay(pair.v_prev, pair.v_next) == (
            floating.delay
        )

    def test_no_witness_returns_none(self):
        from repro.core import DelayCertificate

        circuit = c17()
        cert = DelayCertificate(mode="floating", delay=0)
        assert extend_floating_witness(circuit, cert) is None
