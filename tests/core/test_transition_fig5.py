"""Lock in the exact Fig. 5 closed-form symbolic functions of Sec. V-C."""

from repro.boolfn import BddEngine
from repro.core import TransitionAnalysis
from repro.circuits import fig5_circuit


def build():
    engine = BddEngine()
    analysis = TransitionAnalysis(fig5_circuit(), engine)
    m = engine.manager
    a_p, a_c = m.var("a@-"), m.var("a@0")
    b_p, b_c = m.var("b@-"), m.var("b@0")
    return engine, analysis, m, a_p, a_c, b_p, b_c


class TestIntervalFunctions:
    def test_g0_is_not_a_prev(self):
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        assert analysis.function_at("g", 0) == m.not_(a_p)

    def test_g1_is_not_a_cur(self):
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        assert analysis.function_at("g", 1) == m.not_(a_c)

    def test_f0_is_aprev_bprev(self):
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        assert analysis.function_at("f", 0) == m.and_(m.not_(a_p), b_p)

    def test_f1_mixes_vectors(self):
        # The paper's key line: f_1 = g_0 b_0 = ~a_- b_0.
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        assert analysis.function_at("f", 1) == m.and_(m.not_(a_p), b_c)

    def test_f2_is_final(self):
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        assert analysis.function_at("f", 2) == m.and_(m.not_(a_c), b_c)


class TestTransitionFormulas:
    def test_e_g1(self):
        # e_{g,1} = ~a_- a_0 + a_- ~a_0.
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        assert analysis.transition_predicate("g", 1) == m.xor_(a_p, a_c)

    def test_e_f1(self):
        # e_{f,1} = ~a_- b_- ~b_0 + ~a_- ~b_- b_0.
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        expected = m.and_(m.not_(a_p), m.xor_(b_p, b_c))
        assert analysis.transition_predicate("f", 1) == expected

    def test_e_f2(self):
        # e_{f,2} = ~a_- a_0 b_0 + a_- ~a_0 b_0.
        __, analysis, m, a_p, a_c, b_p, b_c = build()
        expected = m.and_(b_c, m.xor_(a_p, a_c))
        assert analysis.transition_predicate("f", 2) == expected

    def test_paper_implicant_of_ef2(self):
        # Implicant ~a_- a_0 b_0 -> pair v1(a,b) = (0,X), v2(a,b) = (1,1).
        engine, analysis, m, a_p, a_c, b_p, b_c = build()
        implicant = m.and_many([m.not_(a_p), a_c, b_c])
        e_f2 = analysis.transition_predicate("f", 2)
        assert engine.is_tautology(m.implies(implicant, e_f2))

    def test_conjunction_example(self):
        # ~a_- a_0 ~b_- b_0 is an implicant of e_{f,1} e_{f,2}.
        engine, analysis, m, a_p, a_c, b_p, b_c = build()
        both = m.and_(
            analysis.transition_predicate("f", 1),
            analysis.transition_predicate("f", 2),
        )
        implicant = m.and_many([m.not_(a_p), a_c, m.not_(b_p), b_c])
        assert engine.is_tautology(m.implies(implicant, both))
        assert both != engine.const0
