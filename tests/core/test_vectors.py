from repro.core import (
    DelayCertificate,
    VectorPair,
    cur_var,
    format_vector,
    prev_var,
)


class TestVariableNaming:
    def test_suffixes(self):
        assert prev_var("a") == "a@-"
        assert cur_var("a") == "a@0"
        assert prev_var("a") != cur_var("a")


class TestVectorPair:
    def test_from_model_fills_dont_cares(self):
        pair = VectorPair.from_model(
            {"a@-": True, "b@0": True}, ["a", "b"], fill=False
        )
        assert pair.v_prev == {"a": True, "b": False}
        assert pair.v_next == {"a": False, "b": True}

    def test_fill_true(self):
        pair = VectorPair.from_model({}, ["a"], fill=True)
        assert pair.v_prev == {"a": True} and pair.v_next == {"a": True}

    def test_to_model_roundtrip(self):
        pair = VectorPair({"a": True, "b": False}, {"a": False, "b": False})
        again = VectorPair.from_model(pair.to_model(), ["a", "b"])
        assert again.v_prev == pair.v_prev and again.v_next == pair.v_next

    def test_changed_inputs(self):
        pair = VectorPair({"a": True, "b": False}, {"a": False, "b": False})
        assert pair.changed_inputs() == ["a"]

    def test_render(self):
        pair = VectorPair({"a": True, "b": False}, {"a": False, "b": True})
        assert pair.render(["a", "b"]) == "<10, 01>"


class TestFormatVector:
    def test_order_respected(self):
        assert format_vector({"a": True, "b": False}, ["b", "a"]) == "01"


class TestDelayCertificate:
    def test_describe_transition(self):
        cert = DelayCertificate(
            mode="transition",
            delay=5,
            output="f",
            value=True,
            pair=VectorPair({"a": True}, {"a": False}),
            checks=3,
        )
        text = cert.describe(["a"])
        assert "transition delay = 5" in text
        assert "<1, 0>" in text
        assert "checks          : 3" in text

    def test_describe_floating(self):
        cert = DelayCertificate(
            mode="floating", delay=4, output="f", value=False,
            witness={"a": True}, checks=2,
        )
        text = cert.describe(["a"])
        assert "floating delay = 4" in text
        assert "witness vector  : 1" in text
