
from repro.core import Verdict, certify
from repro.network import refined_delay_annotation, scale_delays
from repro.circuits import carry_skip_adder, fig2_circuit

from tests.helpers import c17


class TestCertifyFlow:
    def test_identical_model_certified(self):
        report = certify(c17())
        assert report.verdict == Verdict.CERTIFIED
        assert report.transition.delay == report.model_replay_delay
        assert report.floating.delay >= report.transition.delay
        assert report.topological_delay >= report.floating.delay

    def test_report_describe(self):
        report = certify(c17())
        text = report.describe()
        assert "CERTIFIED" in text
        assert "floating delay" in text

    def test_faster_accurate_model_is_conservative(self):
        c = carry_skip_adder(8, 4)
        estimated = scale_delays(c, 3)  # pessimistic verifier delays
        accurate = c                     # faster silicon
        report = certify(estimated, accurate_circuit=accurate)
        assert report.verdict == Verdict.CERTIFIED_CONSERVATIVE
        assert report.gamma < report.transition.delay

    def test_slower_accurate_model_flags_pessimism_gap(self):
        c = c17()
        accurate = scale_delays(c, 4)  # silicon slower than the model
        report = certify(c, accurate_circuit=accurate)
        assert report.verdict == Verdict.MODEL_NOT_PESSIMISTIC
        assert any("pessimistic" in note for note in report.notes)

    def test_no_activity_verdict(self):
        report = certify(fig2_circuit())
        assert report.verdict == Verdict.NO_ACTIVITY
        assert report.pairs == {}
        # Theorem 3.1 still certifies omega/2 + 1 = 4.
        assert report.certified_min_period == 4

    def test_per_output_pairs_cover_outputs(self):
        report = certify(c17())
        assert set(report.pairs) == set(c17().outputs)

    def test_single_pair_mode(self):
        report = certify(c17(), per_output_pairs=False)
        assert len(report.pairs) == 1

    def test_statistical_follow_up(self):
        c = carry_skip_adder(8, 4)
        estimated = scale_delays(c, 2)
        report = certify(
            estimated, accurate_circuit=c, statistical_samples=25
        )
        assert report.statistics is not None
        assert len(report.statistics.samples) == 25
        assert "statistical" in report.describe()

    def test_refined_annotation_pipeline(self):
        c = c17()
        accurate = refined_delay_annotation(c, base_scale=1, load_per_fanout=0)
        report = certify(c, accurate_circuit=accurate)
        assert report.verdict == Verdict.CERTIFIED
        assert report.accurate_replay_delay == report.model_replay_delay
