"""Per-input arrival/clock times across the analyses (Sec. V-C:
"the inputs need not be clocked at the same time")."""


from repro.boolfn import BddEngine
from repro.core import (
    FloatingAnalysis,
    compute_bounded_transition_delay,
    compute_floating_delay,
    compute_transition_delay,
)
from repro.network import CircuitBuilder
from repro.circuits import fig3_circuit


def two_input_and():
    b = CircuitBuilder("late")
    a, x = b.inputs("a", "x")
    g = b.and_(a, x, name="g")
    b.output(g)
    return b.build()


class TestFloatingWithArrivalTimes:
    def test_late_input_shifts_floating_delay(self):
        circuit = two_input_and()
        base = compute_floating_delay(circuit, engine=BddEngine())
        late = compute_floating_delay(
            circuit, engine=BddEngine(), input_times={"x": 5}
        )
        assert base.delay == 1
        assert late.delay == 6

    def test_windows_shift(self):
        circuit = two_input_and()
        analysis = FloatingAnalysis(
            circuit, BddEngine(), input_times={"x": 5}
        )
        assert analysis.earliest("g") == 1
        assert analysis.latest("g") == 6


class TestTransitionWithArrivalTimes:
    def test_fig3_delay(self):
        circuit, times = fig3_circuit()
        cert = compute_transition_delay(
            circuit, engine=BddEngine(), input_times=times
        )
        # The last possible transition window of g4 is [9,10].
        assert cert.delay == 10

    def test_bounded_with_arrival_times(self):
        circuit = two_input_and()
        cert = compute_bounded_transition_delay(
            circuit, engine=BddEngine(), input_times={"x": 5}
        )
        assert cert.delay == 6

    def test_all_inputs_shifted_equals_global_shift(self):
        circuit = two_input_and()
        base = compute_transition_delay(circuit, engine=BddEngine())
        shifted = compute_transition_delay(
            circuit,
            engine=BddEngine(),
            input_times={"a": 3, "x": 3},
        )
        assert shifted.delay == base.delay + 3
