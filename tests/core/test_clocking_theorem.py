"""Theorem 3.1: tau > omega/2 with tau >= t.d. is a valid clock period."""


from repro.boolfn import BddEngine
from repro.core import (
    compute_transition_delay,
    is_certified_period,
    smallest_empirical_period,
    theorem31_min_period,
    validate_period_by_simulation,
)
from repro.network import CircuitBuilder
from repro.circuits import fig2_circuit

from tests.helpers import c17, random_circuit


class TestBound:
    def test_minimum_period_definition(self):
        c = c17()  # omega = 3
        assert theorem31_min_period(c, 0) == 2
        assert theorem31_min_period(c, 3) == 3
        assert theorem31_min_period(c, 9) == 9

    def test_is_certified(self):
        c = c17()
        assert is_certified_period(c, 3, 3)
        assert not is_certified_period(c, 2, 3)   # below t.d.
        assert not is_certified_period(c, 1, 1)   # not > omega/2

    def test_fig2_certifies_period_four(self):
        c = fig2_circuit()  # omega = 6, t.d. = 0
        assert theorem31_min_period(c, 0) == 4
        assert is_certified_period(c, 4, 0)
        assert not is_certified_period(c, 3, 0)


class TestEmpiricalValidation:
    def test_fig2_clocked_at_four_below_floating(self):
        # The paper: "with a clock period of 4, less than the floating
        # delay of 5, the output of the circuit stays a stable 1."
        c = fig2_circuit()
        result = validate_period_by_simulation(c, 4, num_vectors=60)
        assert result.ok

    def test_theorem_period_always_validates(self):
        for seed in range(12):
            c = random_circuit(seed, num_inputs=3, num_gates=6)
            cert = compute_transition_delay(c, engine=BddEngine())
            tau = theorem31_min_period(c, cert.delay)
            result = validate_period_by_simulation(
                c, tau, num_vectors=40, seed=seed
            )
            assert result.ok, (seed, tau, result.mismatches)

    def test_too_short_period_detected(self):
        b = CircuitBuilder("sl")
        a, = b.inputs("a")
        g = b.buf(a, name="g", delay=8)
        b.output(g)
        c = b.build()
        vectors = [{"a": bool(k % 2)} for k in range(6)]
        result = validate_period_by_simulation(c, 4, vectors=vectors)
        assert not result.ok
        assert result.vectors_checked == 5

    def test_smallest_empirical_at_most_theorem_bound(self):
        for seed in range(6):
            c = random_circuit(seed + 20, num_inputs=3, num_gates=6)
            cert = compute_transition_delay(c, engine=BddEngine())
            tau = theorem31_min_period(c, cert.delay)
            empirical = smallest_empirical_period(c, num_vectors=30, seed=seed)
            assert empirical <= max(tau, 1)

    def test_fig2_empirical_goes_below_floating(self):
        c = fig2_circuit()
        empirical = smallest_empirical_period(c, num_vectors=60)
        assert empirical <= 4
