"""Hypothesis properties of the core data structures themselves."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.boolfn import BddManager, Cube, Sop
from repro.fsm import Fsm, FsmTransition, dumps_kiss, loads_kiss
from repro.sim import Waveform, WaveformSet, dumps_vcd, loads_vcd

# ----------------------------------------------------------------------
# Waveforms
# ----------------------------------------------------------------------
event_lists = st.lists(
    st.tuples(st.integers(0, 40), st.booleans()), max_size=12
).map(lambda evs: sorted(evs, key=lambda e: e[0]))


@settings(max_examples=120, deadline=None)
@given(initial=st.booleans(), events=event_lists)
def test_waveform_value_semantics(initial, events):
    wave = Waveform(initial)
    applied = []
    last_time = None
    for time, value in events:
        wave.append(time, value)
        if last_time == time and applied:
            applied[-1] = (time, value)
        else:
            applied.append((time, value))
        last_time = time
    # Right-continuity: the value at any t equals the last applied value
    # at or before t.
    for t in range(0, 42):
        expected = initial
        for time, value in applied:
            if time <= t:
                expected = value
        assert wave.value_at(t) == expected
        expected_before = initial
        for time, value in applied:
            if time < t:
                expected_before = value
        assert wave.value_before(t) == expected_before


@settings(max_examples=80, deadline=None)
@given(initial=st.booleans(), events=event_lists)
def test_waveform_events_are_strict_alternations(initial, events):
    wave = Waveform(initial)
    for time, value in events:
        wave.append(time, value)
    previous = initial
    last_time = -1
    for time, value in wave.events:
        assert value != previous          # every stored event is a change
        assert time > last_time           # strictly increasing
        previous, last_time = value, time
    assert wave.glitches() >= 0


@settings(max_examples=50, deadline=None)
@given(
    initial=st.booleans(),
    events=event_lists.filter(
        lambda evs: len({t for t, __ in evs}) == len(evs)
    ),
)
def test_vcd_roundtrip_preserves_sampled_values(initial, events):
    wave = Waveform(initial)
    for time, value in events:
        wave.append(time, value)
    waves = WaveformSet({"sig": wave})
    again = loads_vcd(dumps_vcd(waves))
    for t in range(0, 42):
        assert again["sig"].value_at(t) == wave.value_at(t)


# ----------------------------------------------------------------------
# Cubes and covers
# ----------------------------------------------------------------------
VARS = ["a", "b", "c", "d"]
cube_strategy = st.dictionaries(
    st.sampled_from(VARS), st.booleans(), max_size=4
).map(Cube)


def assignments():
    for bits in itertools.product([False, True], repeat=4):
        yield dict(zip(VARS, bits))


@settings(max_examples=80, deadline=None)
@given(left=cube_strategy, right=cube_strategy)
def test_cube_containment_is_semantic(left, right):
    if left.contains(right):
        for env in assignments():
            if right.evaluate(env):
                assert left.evaluate(env)


@settings(max_examples=80, deadline=None)
@given(left=cube_strategy, right=cube_strategy)
def test_cube_intersects_is_semantic(left, right):
    semantically = any(
        left.evaluate(env) and right.evaluate(env) for env in assignments()
    )
    assert left.intersects(right) == semantically


@settings(max_examples=60, deadline=None)
@given(cubes=st.lists(cube_strategy, max_size=6))
def test_sop_merged_preserves_function(cubes):
    sop = Sop(cubes)
    merged = sop.merged()
    for env in assignments():
        assert merged.evaluate(env) == sop.evaluate(env)
    assert merged.literal_count() <= sop.literal_count()


@settings(max_examples=60, deadline=None)
@given(cubes=st.lists(cube_strategy, max_size=6))
def test_single_cube_containment_preserves_function(cubes):
    sop = Sop(cubes)
    reduced = sop.single_cube_containment()
    assert len(reduced) <= len(sop)
    for env in assignments():
        assert reduced.evaluate(env) == sop.evaluate(env)


# ----------------------------------------------------------------------
# BDD model counting
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_bdd_sat_count_matches_enumeration(data):
    mgr = BddManager()
    variables = {n: mgr.var(n) for n in VARS}

    def build(depth):
        op = data.draw(st.sampled_from(["var", "and", "or", "xor", "not"]))
        if depth == 0 or op == "var":
            return variables[data.draw(st.sampled_from(VARS))]
        if op == "not":
            return mgr.not_(build(depth - 1))
        f, g = build(depth - 1), build(depth - 1)
        return {"and": mgr.and_, "or": mgr.or_, "xor": mgr.xor_}[op](f, g)

    f = build(3)
    count = sum(1 for env in assignments() if mgr.evaluate(f, env))
    assert mgr.sat_count(f, 4) == count


# ----------------------------------------------------------------------
# KISS round trips
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_kiss_roundtrip_random_machines(data):
    num_states = data.draw(st.integers(1, 5))
    states = [f"s{i}" for i in range(num_states)]
    rows = []
    for state in states:
        for pattern in ("0", "1"):
            nxt = states[data.draw(st.integers(0, num_states - 1))]
            out = data.draw(st.sampled_from(["0", "1", "-"]))
            rows.append(FsmTransition(pattern, state, nxt, out))
    fsm = Fsm("rand", 1, 1, states, states[0], rows)
    again = loads_kiss(dumps_kiss(fsm), "rand")
    assert again.transitions == fsm.transitions
    # The reader records states in first-appearance order; the *set* and
    # the behaviour must survive the round trip.
    assert set(again.states) == set(fsm.states)
    assert again.reset_state == fsm.reset_state
    for state in states:
        for bit in (False, True):
            assert again.step(state, [bit]) == fsm.step(state, [bit])
