"""Scenario layer: deterministic streams, serialisation, materialise."""

import random

from repro.fuzz.scenario import (
    CORNER_KINDS,
    Corner,
    Scenario,
    apply_edits,
    materialize,
    random_edit,
    scenario_for,
    scenario_stream,
    snapshot_circuit,
)
from repro.runtime.fingerprint import circuit_fingerprint


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        a = scenario_for(13, 2)
        b = scenario_for(13, 2)
        assert a == b
        assert circuit_fingerprint(materialize(a)) == (
            circuit_fingerprint(materialize(b))
        )

    def test_different_indices_differ(self):
        a = scenario_for(13, 0)
        b = scenario_for(13, 1)
        assert a.scenario_id != b.scenario_id
        assert a != b

    def test_stream_matches_pointwise_draws(self):
        streamed = scenario_stream(seed=4, count=5)
        assert [s.scenario_id for s in streamed] == [
            f"s4x{i}" for i in range(5)
        ]
        assert streamed[3] == scenario_for(4, 3)

    def test_corner_kinds_drawn_from_catalog(self):
        kinds = {
            scenario_for(1, i).corner.kind for i in range(30)
        }
        assert kinds <= set(CORNER_KINDS)
        assert len(kinds) >= 3  # the draw actually mixes corners


class TestSerialisation:
    def test_round_trip_dict(self):
        scenario = scenario_for(7, 1)
        data = scenario.to_dict()
        back = Scenario.from_dict(data)
        assert back == scenario
        # The dict is JSON-plain: no tuples, no custom objects.
        import json

        assert json.loads(json.dumps(data)) == data

    def test_corner_round_trip(self):
        corner = Corner(kind="clocked", options=(("skew", 2),))
        assert Corner.from_dict(corner.to_dict()) == corner
        assert corner.option("skew", 0) == 2
        assert corner.option("missing", 9) == 9


class TestMaterialise:
    def test_journal_starts_empty(self):
        scenario = scenario_for(3, 0)
        circuit = materialize(scenario)
        assert circuit.journal_length == 0
        circuit.validate()

    def test_delays_applied(self):
        scenario = scenario_for(3, 0)
        circuit = materialize(scenario)
        for name, delay in scenario.delays.items():
            assert circuit.node(name).delay == delay

    def test_snapshot_round_trips(self):
        original = materialize(scenario_for(9, 2))
        bench_text, delays = snapshot_circuit(original)
        clone = materialize(
            Scenario(
                scenario_id="t",
                seed=0,
                circuit_name=original.name,
                bench_text=bench_text,
                delays=delays,
                corner=Corner(kind="fixed", options=()),
                edits=(),
            )
        )
        assert circuit_fingerprint(clone) == circuit_fingerprint(original)


class TestEdits:
    def test_random_edit_applies(self):
        circuit = materialize(scenario_for(5, 0))
        rng = random.Random("edit-test")
        applied = 0
        for __ in range(20):
            edit = random_edit(circuit, rng)
            if edit is None:
                continue
            applied += apply_edits(circuit, [edit])
            circuit.validate()
        assert applied > 0

    def test_apply_edits_skips_invalid(self):
        circuit = materialize(scenario_for(5, 1))
        bad = {"op": "set_delay", "name": "no_such_gate", "delay": 3}
        assert apply_edits(circuit, [bad]) == 0

    def test_scenario_edits_apply_to_materialised(self):
        # Every edit recorded in a scenario was drawn against the same
        # evolving circuit, so replaying them must succeed.
        for index in range(6):
            scenario = scenario_for(21, index, max_edits=4)
            circuit = materialize(scenario)
            apply_edits(circuit, scenario.edits)
            circuit.validate()
