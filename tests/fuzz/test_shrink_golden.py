"""Golden shrinker test: a planted divergence shrinks to a minimal,
replayable scenario that still contains the triggering XOR gate."""

import json

import pytest

from repro.fuzz.oracle import edited_circuit, run_oracle
from repro.fuzz.runner import (
    load_repro,
    replay_repro,
    run_sweep,
    write_repro,
)
from repro.fuzz.scenario import scenario_for
from repro.fuzz.shrink import scenario_size, shrink_scenario
from repro.network.gates import GateType


def xor_count(scenario):
    return sum(
        node.gate_type in (GateType.XOR, GateType.XNOR)
        for node in edited_circuit(scenario).nodes()
    )


def planted_scenario(seed=42, limit=10):
    for index in range(limit):
        scenario = scenario_for(seed, index)
        if not run_oracle(scenario, "incremental", plant="xor").ok:
            return scenario
    pytest.fail("no planted failure found")


class TestShrink:
    def fails(self, scenario):
        return not run_oracle(scenario, "incremental", plant="xor").ok

    def test_golden_planted_divergence_shrinks_small(self):
        scenario = planted_scenario()
        result = shrink_scenario(scenario, self.fails)
        final = result.scenario
        # Still failing, dramatically smaller, and the cause survives:
        # at least one XOR/XNOR gate remains (the plant triggers on it).
        assert self.fails(final)
        assert result.final_size < result.original_size
        assert xor_count(final) >= 1
        circuit = edited_circuit(final)
        assert circuit.num_gates <= 4
        assert tuple(final.edits) == ()
        assert final.corner.kind == "fixed"

    def test_shrink_is_deterministic(self):
        scenario = planted_scenario()
        a = shrink_scenario(scenario, self.fails)
        b = shrink_scenario(scenario, self.fails)
        assert a.scenario == b.scenario
        assert a.evaluations == b.evaluations

    def test_shrink_rejects_passing_input(self):
        scenario = scenario_for(42, 0)
        with pytest.raises(ValueError):
            shrink_scenario(scenario, lambda s: False)

    def test_scenario_size_orders_by_gates_first(self):
        big = scenario_for(42, 0)
        assert scenario_size(big) > (0, 0, 0, 0, 0)


class TestReproEnvelope:
    def test_sweep_writes_replayable_repro(self, tmp_path):
        report = run_sweep(
            seed=42,
            count=6,
            oracles=("incremental",),
            plant="xor",
            out_dir=str(tmp_path),
            shrink_budget=120,
        )
        assert report.failures
        assert report.repro_paths
        for path in report.repro_paths:
            envelope = json.loads(open(path).read())
            assert envelope["format"] == "trued-fuzz-repro"
            assert envelope["version"] == 1
            assert envelope["failure"]["ok"] is False
            reproduced, verdicts = replay_repro(path)
            assert reproduced
            assert verdicts and not verdicts[0].ok

    def test_repro_shrunk_scenario_is_small(self, tmp_path):
        report = run_sweep(
            seed=42,
            count=6,
            oracles=("incremental",),
            plant="xor",
            out_dir=str(tmp_path),
            shrink_budget=120,
        )
        envelope = load_repro(report.repro_paths[0])
        from repro.fuzz.scenario import Scenario

        scenario = Scenario.from_dict(envelope["scenario"])
        assert edited_circuit(scenario).num_gates <= 4
        assert envelope["shrink"]["evaluations"] > 0

    def test_write_load_round_trip(self, tmp_path):
        from repro.fuzz.runner import _repro_envelope

        scenario = planted_scenario()
        verdict = run_oracle(scenario, "incremental", plant="xor")
        path = str(tmp_path / "x.repro.json")
        envelope = _repro_envelope(
            scenario, verdict, ("incremental",), 1, "xor", None
        )
        write_repro(path, envelope)
        loaded = load_repro(path)
        assert loaded["scenario"]["scenario_id"] == scenario.scenario_id

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.repro.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_repro(str(path))
