"""`trued fuzz` end to end: exit codes, deterministic verdicts across
jobs, replay/shrink of filed repros, and the corpus table."""

import json
import subprocess
import sys

import pytest

PY = [sys.executable, "-m", "repro"]


def run_cli(*args, cwd=None):
    return subprocess.run(
        PY + list(args),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=cwd or "/root/repo",
    )


class TestFuzzRun:
    def test_clean_sweep_exits_zero(self, tmp_path):
        result = run_cli(
            "fuzz", "run", "--seed", "42", "--count", "3",
            "-o", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert "PASS" in result.stdout
        assert "FAIL" not in result.stdout
        verdicts = (tmp_path / "verdicts.txt").read_text()
        assert verdicts.count("\n") == 3 * 4  # scenarios x oracles

    def test_verdicts_identical_across_jobs(self, tmp_path):
        a = run_cli(
            "fuzz", "run", "--seed", "11", "--count", "4",
            "--jobs", "1", "-o", str(tmp_path / "serial"),
        )
        b = run_cli(
            "fuzz", "run", "--seed", "11", "--count", "4",
            "--jobs", "4", "-o", str(tmp_path / "sharded"),
        )
        assert a.returncode == 0 and b.returncode == 0
        assert (tmp_path / "serial" / "verdicts.txt").read_bytes() == (
            tmp_path / "sharded" / "verdicts.txt"
        ).read_bytes()

    def test_planted_divergence_exits_one_and_files_repro(self, tmp_path):
        result = run_cli(
            "fuzz", "run", "--seed", "42", "--count", "6",
            "--oracles", "incremental", "--plant", "xor",
            "-o", str(tmp_path), "--shrink-budget", "120",
        )
        assert result.returncode == 1
        repros = list(tmp_path.glob("*.repro.json"))
        assert repros
        envelope = json.loads(repros[0].read_text())
        assert envelope["format"] == "trued-fuzz-repro"

    def test_oracle_selection_validated(self, tmp_path):
        result = run_cli(
            "fuzz", "run", "--seed", "1", "--count", "1",
            "--oracles", "tarot", "-o", str(tmp_path),
        )
        assert result.returncode == 2


class TestFuzzReplayAndShrink:
    @pytest.fixture()
    def repro_path(self, tmp_path):
        run_cli(
            "fuzz", "run", "--seed", "42", "--count", "6",
            "--oracles", "incremental", "--plant", "xor",
            "-o", str(tmp_path), "--no-shrink",
        )
        paths = sorted(tmp_path.glob("*.repro.json"))
        assert paths
        return paths[0]

    def test_replay_reproduces(self, repro_path):
        result = run_cli("fuzz", "replay", str(repro_path))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "FAIL" in result.stdout

    def test_shrink_reduces_envelope(self, repro_path, tmp_path):
        out = tmp_path / "min.repro.json"
        result = run_cli(
            "fuzz", "shrink", str(repro_path), "-o", str(out),
            "--budget", "120",
        )
        assert result.returncode == 0, result.stdout + result.stderr
        envelope = json.loads(out.read_text())
        assert envelope["shrink"]["evaluations"] > 0
        replay = run_cli("fuzz", "replay", str(out))
        assert replay.returncode == 0

    def test_replay_of_missing_file_is_an_error(self):
        result = run_cli("fuzz", "replay", "/nonexistent.repro.json")
        assert result.returncode == 2


class TestFuzzCorpus:
    def test_generated_corpus_table(self):
        result = run_cli(
            "fuzz", "corpus", "--seed", "7", "--count", "3"
        )
        assert result.returncode == 0
        assert "fzs7x0" in result.stdout
        assert "gates" in result.stdout

    def test_registry_table_lists_known_circuits(self):
        result = run_cli("fuzz", "corpus", "--registry")
        assert result.returncode == 0
        assert "c17" in result.stdout
        assert "fig1" in result.stdout
