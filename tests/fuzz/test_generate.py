"""Corpus generator: determinism, profile targets, structured families."""

import pytest

from repro.fuzz.generate import (
    DagProfile,
    GenerationError,
    adder_tower,
    corpus_profiles,
    corpus_sizes,
    multiplier_ladder,
    random_dag,
    random_gate_circuit,
    register_corpus,
    tile_circuit,
    xor_spine,
)
from repro.network.gates import GateType
from repro.runtime.fingerprint import circuit_fingerprint


def structural_depth(circuit):
    depth = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        fanin_depth = max((depth[f] for f in node.fanins), default=-1)
        depth[name] = 0 if node.gate_type == GateType.INPUT else (
            fanin_depth + 1
        )
    return max(depth.values(), default=0)


class TestRandomDag:
    def test_deterministic_in_profile(self):
        profile = DagProfile(seed=11, num_gates=40)
        assert circuit_fingerprint(random_dag(profile)) == (
            circuit_fingerprint(random_dag(profile))
        )

    def test_different_seeds_differ(self):
        a = random_dag(DagProfile(seed=1))
        b = random_dag(DagProfile(seed=2))
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_meets_structural_targets(self):
        profile = DagProfile(
            seed=5, num_inputs=8, num_gates=60, num_outputs=4,
            min_depth=6, max_fanout=10, max_delay=3,
        )
        circuit = random_dag(profile)
        circuit.validate()
        assert circuit.num_gates == 60
        assert len(circuit.inputs) == 8
        assert structural_depth(circuit) >= 6
        fanouts = circuit.fanouts()
        assert max(len(v) for v in fanouts.values()) <= 10
        assert all(
            1 <= n.delay <= 3
            for n in circuit.nodes()
            if n.gate_type != GateType.INPUT
        )

    def test_liveness_when_required(self):
        circuit = random_dag(DagProfile(seed=9, require_live=True))
        fanouts = circuit.fanouts()
        assert all(fanouts[name] for name in circuit.inputs)
        live = set(circuit.transitive_fanin(circuit.outputs))
        assert set(circuit.gate_names()) <= live

    def test_impossible_profile_raises(self):
        # A depth floor no 2-gate circuit can reach.
        profile = DagProfile(
            seed=3, num_gates=2, min_depth=10, attempts=3
        )
        with pytest.raises(GenerationError):
            random_dag(profile)

    def test_random_gate_circuit_shape(self):
        circuit = random_gate_circuit(17)
        circuit.validate()
        assert circuit.num_gates == 6
        assert len(circuit.inputs) == 3
        assert circuit.outputs


class TestStructuredFamilies:
    def test_adder_tower_depth_scales(self):
        shallow = adder_tower(4, 1)
        deep = adder_tower(4, 4)
        shallow.validate(), deep.validate()
        assert deep.topological_delay() > shallow.topological_delay()

    def test_multiplier_ladder_valid(self):
        circuit = multiplier_ladder(4, 3)
        circuit.validate()
        assert circuit.num_gates > 50

    def test_xor_spine_is_maximal_depth(self):
        circuit = xor_spine(8, 2)
        circuit.validate()
        assert structural_depth(circuit) >= 16

    def test_tile_circuit_scales_and_deepens(self):
        seed = random_gate_circuit(3, num_inputs=4, num_gates=10)
        tiled = tile_circuit(seed, 10)
        tiled.validate()
        assert tiled.num_gates == 10 * seed.num_gates
        assert tiled.topological_delay() > seed.topological_delay()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            adder_tower(0, 1)
        with pytest.raises(ValueError):
            multiplier_ladder(1, 1)
        with pytest.raises(ValueError):
            xor_spine(1, 0)
        with pytest.raises(ValueError):
            tile_circuit(random_gate_circuit(1), 0)


class TestCorpus:
    def test_profiles_deterministic_and_named(self):
        first = corpus_profiles(7, 3)
        second = corpus_profiles(7, 3)
        assert first == second
        assert [p.circuit_name() for p in first] == [
            "fzs7x0", "fzs7x1", "fzs7x2",
        ]

    def test_sizes_known(self):
        assert corpus_sizes() == ["large", "medium", "small"]
        with pytest.raises(ValueError):
            corpus_profiles(1, 1, size="gigantic")

    def test_register_corpus_feeds_registry(self):
        from repro.circuits import registry

        names = register_corpus(31, 2)
        try:
            assert names == ["fzs31x0", "fzs31x1"]
            built = registry.build_circuit("fzs31x0")
            built.validate()
            stats = registry.circuit_stats("fzs31x0")
            assert stats["gates"] == built.num_gates
        finally:
            for name in names:
                registry.unregister_circuit(name)
        assert "fzs31x0" not in registry.available_circuits()
