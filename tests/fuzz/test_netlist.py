"""Netlist layer: located parse errors, round-trip identity on every
registry circuit, and CircuitBuilder-identical structural rejection."""

import pytest

from repro.circuits import available_circuits, build_circuit
from repro.fuzz.netlist import (
    NetlistError,
    export_netlist,
    load_netlist,
    loads_netlist,
    register_netlist,
    round_trip_fixpoint,
    structurally_equal,
)
from repro.network import CircuitBuilder, GateType


class TestLocatedErrors:
    def test_bench_unknown_gate_names_file_and_line(self):
        with pytest.raises(NetlistError) as err:
            loads_netlist(
                "INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n",
                "bench",
                source="bad.bench",
            )
        assert str(err.value).startswith("bad.bench:3: ")
        assert err.value.source == "bad.bench"
        assert err.value.line == 3

    def test_bench_garbage_line_names_file_and_line(self):
        with pytest.raises(NetlistError) as err:
            loads_netlist(
                "INPUT(a)\n\n# comment\nwhat is this\n",
                "bench",
                source="g.bench",
            )
        assert str(err.value).startswith("g.bench:4: ")

    def test_blif_unsupported_construct_names_file_and_line(self):
        with pytest.raises(NetlistError) as err:
            loads_netlist(
                ".model m\n.inputs a\n.outputs f\n.latch a f\n.end\n",
                "blif",
                source="m.blif",
            )
        assert str(err.value).startswith("m.blif:4: ")
        assert err.value.line == 4

    def test_blif_cover_row_outside_names(self):
        with pytest.raises(NetlistError) as err:
            loads_netlist(
                ".model m\n.inputs a\n.outputs f\n1 1\n",
                "blif",
                source="m.blif",
            )
        assert str(err.value).startswith("m.blif:4: ")

    def test_blif_arity_mismatch_names_names_header_line(self):
        text = (
            ".model m\n.inputs a b\n.outputs f\n"
            ".names a b f\n111 1\n.end\n"
        )
        with pytest.raises(NetlistError) as err:
            loads_netlist(text, "blif", source="m.blif")
        assert str(err.value).startswith("m.blif:4: ")

    def test_file_loader_uses_path_as_source(self, tmp_path):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nf = FROB(a)\n")
        with pytest.raises(NetlistError) as err:
            load_netlist(str(path))
        assert str(err.value).startswith(f"{path}:2: ")

    def test_unknown_format_and_extension(self, tmp_path):
        with pytest.raises(NetlistError):
            loads_netlist("x", "verilog")
        path = tmp_path / "c.v"
        path.write_text("module c; endmodule\n")
        with pytest.raises(NetlistError):
            load_netlist(str(path))


class TestStructuralRejection:
    """Cyclic/undriven netlists raise the exact construction-time
    messages CircuitBuilder raises."""

    def builder_error(self, build) -> str:
        with pytest.raises(ValueError) as err:
            build()
        return str(err.value)

    def test_cycle_matches_builder(self):
        def build_cyclic():
            b = CircuitBuilder("cyc")
            b.input("a")
            b.gate(GateType.AND, ["a", "g2"], name="g1")
            b.gate(GateType.NOT, ["g1"], name="g2")
            b.output("g1")
            return b.build()

        message = self.builder_error(build_cyclic)
        text = (
            "INPUT(a)\nOUTPUT(g1)\n"
            "g1 = AND(a, g2)\ng2 = NOT(g1)\n"
        )
        with pytest.raises(NetlistError) as err:
            loads_netlist(text, "bench", source="cyc.bench")
        assert str(err.value) == message
        assert "cycle" in message

    def test_undriven_matches_builder(self):
        def build_undriven():
            b = CircuitBuilder("und")
            b.input("a")
            b.gate(GateType.AND, ["a", "ghost"], name="f")
            b.output("f")
            return b.build()

        message = self.builder_error(build_undriven)
        text = "INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n"
        with pytest.raises(NetlistError) as err:
            loads_netlist(text, "bench", source="und.bench")
        assert str(err.value) == message

    def test_missing_output_matches_builder(self):
        def build_missing():
            b = CircuitBuilder("mo")
            a = b.input("a")
            b.not_(a, name="f")
            b.output("nothere")
            return b.build()

        message = self.builder_error(build_missing)
        text = "INPUT(a)\nOUTPUT(nothere)\nf = NOT(a)\n"
        with pytest.raises(NetlistError) as err:
            loads_netlist(text, "bench", source="mo.bench")
        assert str(err.value) == message


class TestRoundTrip:
    @pytest.mark.parametrize("name", available_circuits())
    @pytest.mark.parametrize("fmt", ("bench", "blif"))
    def test_every_registry_circuit_is_a_fixpoint(self, name, fmt):
        circuit = build_circuit(name)
        first, second = round_trip_fixpoint(circuit, fmt)
        assert structurally_equal(first, second)

    def test_bench_round_trip_preserves_structure(self):
        circuit = build_circuit("fig2")
        text = export_netlist(circuit, "bench")
        back = loads_netlist(text, "bench", name=circuit.name)
        assert back.inputs == circuit.inputs
        assert back.outputs == circuit.outputs
        assert {n.name for n in back.nodes()} == {
            n.name for n in circuit.nodes()
        }

    def test_structurally_equal_detects_difference(self):
        a = build_circuit("fig1")
        b = build_circuit("fig1")
        assert structurally_equal(a, b)
        b.set_delay(b.gate_names()[0], 7)
        assert not structurally_equal(a, b)


class TestRegistryFeeding:
    def test_register_netlist_roundtrip(self, tmp_path):
        from repro.circuits import registry

        circuit = build_circuit("c17")
        path = tmp_path / "c17copy.bench"
        path.write_text(export_netlist(circuit, "bench"))
        name = register_netlist(str(path))
        try:
            assert name == "c17copy"
            built = registry.build_circuit(name)
            assert built.num_gates == circuit.num_gates
            stats = registry.circuit_stats(name)
            assert stats["inputs"] == len(circuit.inputs)
        finally:
            registry.unregister_circuit(name)

    def test_register_collision_requires_replace(self, tmp_path):
        from repro.circuits import registry

        with pytest.raises(ValueError):
            registry.register_circuit(
                "c17", lambda: build_circuit("fig1")
            )
