"""Differential oracles: all four pass on healthy scenarios, verdict
shape, and the planted divergence is caught by the incremental oracle."""

import pytest

from repro.fuzz.oracle import (
    ORACLES,
    OracleVerdict,
    run_oracle,
    run_scenario,
)
from repro.fuzz.scenario import scenario_for


@pytest.fixture(scope="module")
def scenario():
    return scenario_for(42, 0)


class TestHealthyScenarios:
    @pytest.mark.parametrize("oracle", ORACLES)
    def test_oracle_passes(self, scenario, oracle):
        verdict = run_oracle(scenario, oracle)
        assert verdict.ok, verdict.detail
        assert verdict.oracle == oracle
        assert verdict.scenario_id == scenario.scenario_id

    def test_run_scenario_covers_all_in_order(self, scenario):
        verdicts = run_scenario(scenario)
        assert [v.oracle for v in verdicts] == list(ORACLES)
        assert all(v.ok for v in verdicts)

    def test_subset_selection(self, scenario):
        verdicts = run_scenario(scenario, oracles=("wordsim",))
        assert [v.oracle for v in verdicts] == ["wordsim"]

    def test_jobs_oracle_with_shards(self):
        # A couple of scenarios through the jobs oracle at oracle_jobs=2:
        # the sharded path must agree with serial byte for byte.
        for index in range(2):
            verdict = run_oracle(
                scenario_for(42, index), "jobs", oracle_jobs=2
            )
            assert verdict.ok, verdict.detail


class TestVerdictShape:
    def test_verdict_line_format(self, scenario):
        verdict = run_oracle(scenario, "wordsim")
        line = verdict.verdict_line()
        sid, oracle, status, detail = line.split("\t")
        assert sid == scenario.scenario_id
        assert oracle == "wordsim"
        assert status == "PASS"

    def test_round_trip_dict(self, scenario):
        verdict = run_oracle(scenario, "cache")
        back = OracleVerdict.from_dict(verdict.to_dict())
        assert back == verdict

    def test_unknown_oracle_rejected(self, scenario):
        with pytest.raises(ValueError):
            run_oracle(scenario, "astrology")


class TestPlantedDivergence:
    def test_plant_fails_incremental_iff_xor_present(self):
        from repro.fuzz.oracle import edited_circuit
        from repro.network.gates import GateType

        hits = 0
        for index in range(8):
            scenario = scenario_for(42, index)
            circuit = edited_circuit(scenario)
            has_xor = any(
                node.gate_type in (GateType.XOR, GateType.XNOR)
                for node in circuit.nodes()
            )
            verdict = run_oracle(scenario, "incremental", plant="xor")
            assert verdict.ok == (not has_xor), scenario.scenario_id
            hits += int(has_xor)
        assert hits > 0  # the sweep actually exercised the plant

    def test_failure_captures_checks_and_metrics(self):
        for index in range(8):
            scenario = scenario_for(42, index)
            verdict = run_oracle(scenario, "incremental", plant="xor")
            if not verdict.ok:
                assert verdict.expected != verdict.actual
                assert isinstance(verdict.metrics, dict)
                return
        pytest.fail("no planted failure in the first 8 scenarios")

    def test_plant_does_not_leak_into_other_oracles(self):
        scenario = scenario_for(42, 0)
        for oracle in ("jobs", "wordsim", "cache"):
            assert run_oracle(scenario, oracle, plant="xor").ok
