"""Lock in every quantitative claim the paper makes about Figs. 1-5."""


from repro.boolfn import BddEngine
from repro.core import (
    TransitionAnalysis,
    compute_bounded_transition_delay,
    compute_floating_delay,
    compute_transition_delay,
    is_certified_period,
    theorem31_min_period,
    validate_period_by_simulation,
)
from repro.network import is_statically_sensitizable, path_length
from repro.sim import EventSimulator, all_input_vectors
from repro.circuits import (
    FIG2_CRITICAL_PATH,
    fig1_circuit,
    fig1_vector_pair,
    fig2_circuit,
    fig3_circuit,
    fig5_circuit,
)


class TestFig1:
    def test_two_level_function(self):
        # f = a'b + ab' + a'b'c'd'
        c = fig1_circuit()
        for vec in all_input_vectors(c):
            a, b, cc, d = vec["a"], vec["b"], vec["c"], vec["d"]
            expected = ((not a) and b) or (a and not b) or (
                not a and not b and not cc and not d
            )
            assert c.evaluate_outputs(vec)["f"] == expected

    def test_glitch_chain_on_paper_pair(self):
        c = fig1_circuit()
        sim = EventSimulator(c)
        prev, nxt = fig1_vector_pair()
        result = sim.simulate_transition(prev, nxt)
        assert result.waveforms["g2"].events == [(2, True), (3, False)]
        assert result.waveforms["g3"].events == [(3, True), (4, False)]
        assert result.waveforms["g1"].events == [(4, True)]
        # Output settles at 3, well before the floating delay of 5.
        assert result.delay == 3

    def test_floating_delay_five(self):
        cert = compute_floating_delay(fig1_circuit(), engine=BddEngine())
        assert cert.delay == 5

    def test_monotone_speedup_restores_floating(self):
        cert = compute_bounded_transition_delay(
            fig1_circuit(), engine=BddEngine()
        )
        assert cert.delay == 5


class TestFig2:
    def test_output_constant_one(self):
        c = fig2_circuit()
        assert c.evaluate_outputs({"a": False})["e"] is True
        assert c.evaluate_outputs({"a": True})["e"] is True

    def test_longest_graphical_path_is_six(self):
        assert fig2_circuit().topological_delay() == 6

    def test_critical_path_length_five_and_statically_sensitizable(self):
        c = fig2_circuit()
        assert path_length(c, FIG2_CRITICAL_PATH) == 5
        assert is_statically_sensitizable(c, FIG2_CRITICAL_PATH) == {
            "a": True
        }

    def test_floating_delay_five_with_witness_a1(self):
        cert = compute_floating_delay(fig2_circuit(), engine=BddEngine())
        assert cert.delay == 5
        assert cert.witness == {"a": True}

    def test_transition_delay_zero(self):
        cert = compute_transition_delay(fig2_circuit(), engine=BddEngine())
        assert cert.delay == 0

    def test_event_blocked_at_d(self):
        # Sec. IV-C: on <a=0 -> a=1>, gate b settles to 0 only after the
        # rising event reaches d, so d holds 1 and the event dies there.
        c = fig2_circuit()
        sim = EventSimulator(c)
        result = sim.simulate_transition({"a": False}, {"a": True})
        assert result.waveforms["d"].is_stable()
        assert result.waveforms["e"].is_stable()

    def test_speedup_of_b_gives_instantaneous_glitch_only(self):
        # With b's delay reduced to 0 the inputs of d swap simultaneously;
        # the batched evaluation filters the zero-width glitch (Sec. IV-A).
        from repro.network import apply_speedup

        c = apply_speedup(fig2_circuit(), {"b": 0})
        sim = EventSimulator(c)
        result = sim.simulate_transition({"a": False}, {"a": True})
        assert result.waveforms["d"].is_stable()
        assert result.waveforms["e"].is_stable()

    def test_integer_speedups_never_reach_floating_delay(self):
        # Exhaust all integer monotone speedups: no output event ever
        # reaches the floating delay of 5 (the events stay below omega/2).
        import itertools

        from repro.network import apply_speedup

        c = fig2_circuit()
        gates = [n.name for n in c.nodes() if n.fanins]
        worst = 0
        for delays in itertools.product([0, 1], repeat=len(gates)):
            sped = apply_speedup(c, dict(zip(gates, delays)))
            sim = EventSimulator(sped)
            for prev in (False, True):
                for nxt in (False, True):
                    worst = max(
                        worst,
                        sim.measure_pair_delay({"a": prev}, {"a": nxt}),
                    )
        assert worst <= 3  # sup over real-valued delays is omega/2 = 3
        assert worst < 5

    def test_clock_period_four_valid_below_floating_delay(self):
        c = fig2_circuit()
        assert theorem31_min_period(c, 0) == 4
        assert is_certified_period(c, 4, 0)
        assert validate_period_by_simulation(c, 4, num_vectors=50).ok


class TestFig3:
    def test_gate_delays(self):
        c, times = fig3_circuit()
        assert c.node("g1").delay == 1
        assert c.node("g2").delay == 2
        assert c.node("g3").delay == 1
        assert c.node("g4").delay == 4
        assert times == {"i1": 1, "i2": 1, "i3": 1, "i4": 6}

    def test_fig4_windows(self):
        c, times = fig3_circuit()
        analysis = TransitionAnalysis(c, BddEngine(), input_times=times)
        assert analysis.possible_transition_times("g1") == [2]
        assert analysis.possible_transition_times("g2") == [3]
        assert analysis.possible_transition_times("g3") == [2, 4]
        assert analysis.possible_transition_times("g4") == [6, 7, 8, 10]

    def test_windows_within_lemma51_bounds(self):
        c, times = fig3_circuit()
        analysis = TransitionAnalysis(c, BddEngine(), input_times=times)
        for g in ("g1", "g2", "g3", "g4"):
            for t in analysis.possible_transition_times(g):
                assert analysis.earliest(g) <= t <= analysis.latest(g)


class TestFig5:
    def test_structure(self):
        c = fig5_circuit()
        assert c.num_gates == 2
        assert c.outputs == ["f"]

    def test_delay_two(self):
        cert = compute_transition_delay(fig5_circuit(), engine=BddEngine())
        assert cert.delay == 2
