import itertools

import pytest

from repro.circuits import mcnc


class TestSyntheticFsm:
    def test_deterministic(self):
        left = mcnc.build_fsm("sand")
        right = mcnc.build_fsm("sand")
        assert left.transitions == right.transitions

    def test_rows_disjoint_per_state(self):
        fsm = mcnc.build_fsm("styr")
        by_state = {}
        for row in fsm.transitions:
            by_state.setdefault(row.state, []).append(row)
        for rows in by_state.values():
            for r1, r2 in itertools.combinations(rows, 2):
                overlap = all(
                    a == "-" or b == "-" or a == b
                    for a, b in zip(r1.inputs, r2.inputs)
                )
                assert not overlap

    @pytest.mark.parametrize("name", mcnc.available())
    def test_parameters(self, name):
        num_inputs, num_states, num_outputs = mcnc.STANDIN_PARAMS[name]
        fsm = mcnc.build_fsm(name)
        assert fsm.num_inputs == num_inputs
        assert len(fsm.states) == num_states
        assert fsm.num_outputs == num_outputs

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            mcnc.build_fsm("nope")


class TestEncodedControllers:
    @pytest.mark.parametrize("name", ["planet", "sand", "styr"])
    def test_encoded_io_matches_table1(self, name):
        logic = mcnc.build(name)
        inputs, outputs, __, __ = mcnc.PAPER_TABLE1_FSM[name]
        assert len(logic.circuit.inputs) == inputs
        assert len(logic.circuit.outputs) == outputs

    def test_scf_encoded_io(self):
        logic = mcnc.build("scf")
        assert len(logic.circuit.inputs) == 33
        assert len(logic.circuit.outputs) == 63

    def test_synthesis_matches_table_on_samples(self):
        logic = mcnc.build("sand")
        fsm = logic.fsm
        import random

        rng = random.Random(2)
        state = fsm.reset_state
        for __ in range(40):
            bits = [bool(rng.getrandbits(1)) for __ in range(fsm.num_inputs)]
            expect_state, expect_out = fsm.step(state, bits)
            got_state, got_out = logic.evaluate_step(state, bits)
            assert (got_state, got_out) == (expect_state, expect_out)
            state = expect_state


class TestStickyController:
    def test_reachable_cycle(self):
        logic = mcnc.sticky_bit_controller()
        assert logic.fsm.reachable_states() == ["A", "B", "C", "D"]

    def test_circuit_consistent_with_table(self):
        logic = mcnc.sticky_bit_controller(chain_len=4)
        for state in logic.fsm.states:
            for bit in (False, True):
                expect = logic.fsm.step(state, [bit])
                got = logic.evaluate_step(state, [bit])
                assert got == (expect[0], expect[1]), (state, bit)

    def test_chain_length_controls_delays(self):
        logic = mcnc.sticky_bit_controller(chain_len=9)
        assert logic.circuit.topological_delay() == 11  # chain + AND + OR
