"""The circuit registry: the spec-addressable corpus must build and
stay a closed catalog."""

import pytest

from repro.circuits.registry import available_circuits, build_circuit

#: Representative sample of the characterization-corpus variants; kept
#: small enough that building them all stays fast.
VARIANT_SAMPLE = [
    "rca8", "rca32", "csa32", "mult4", "parity64", "alu8",
    "alu8skip", "dec4", "cmp16", "ecc32", "rand120x7", "rand350x5",
]


def test_corpus_variants_are_registered():
    names = set(available_circuits())
    expected = {
        "rca8", "rca16", "rca32", "rca64",
        "csa24", "csa32", "csa48", "csa64",
        "mult4", "mult12", "mult16",
        "parity32", "parity64", "parity128",
        "alu8", "alu16", "alu8skip", "alu16skip",
        "dec4", "dec5", "dec6",
        "cmp16", "cmp32", "cmp64",
        "ecc32",
        "rand120x7", "rand120x19", "rand350x5", "rand350x23",
        "rand600x11",
    }
    assert expected <= names


@pytest.mark.parametrize("name", VARIANT_SAMPLE)
def test_variants_build_valid_circuits(name):
    circuit = build_circuit(name)
    circuit.validate()
    assert circuit.num_gates > 0
    assert circuit.topological_delay() > 0


def test_builds_are_reproducible():
    from repro.runtime.fingerprint import circuit_fingerprint

    assert (circuit_fingerprint(build_circuit("rand350x5"))
            == circuit_fingerprint(build_circuit("rand350x5")))
    # Different seed, different circuit.
    assert (circuit_fingerprint(build_circuit("rand350x5"))
            != circuit_fingerprint(build_circuit("rand350x23")))


def test_unknown_name_lists_catalog():
    with pytest.raises(ValueError, match="unknown benchmark circuit"):
        build_circuit("rca128")
