"""The circuit registry: the spec-addressable corpus must build and
stay a closed catalog."""

import pytest

from repro.circuits.registry import available_circuits, build_circuit

#: Representative sample of the characterization-corpus variants; kept
#: small enough that building them all stays fast.
VARIANT_SAMPLE = [
    "rca8", "rca32", "csa32", "mult4", "parity64", "alu8",
    "alu8skip", "dec4", "cmp16", "ecc32", "rand120x7", "rand350x5",
]


def test_corpus_variants_are_registered():
    names = set(available_circuits())
    expected = {
        "rca8", "rca16", "rca32", "rca64",
        "csa24", "csa32", "csa48", "csa64",
        "mult4", "mult12", "mult16",
        "parity32", "parity64", "parity128",
        "alu8", "alu16", "alu8skip", "alu16skip",
        "dec4", "dec5", "dec6",
        "cmp16", "cmp32", "cmp64",
        "ecc32",
        "rand120x7", "rand120x19", "rand350x5", "rand350x23",
        "rand600x11",
    }
    assert expected <= names


@pytest.mark.parametrize("name", VARIANT_SAMPLE)
def test_variants_build_valid_circuits(name):
    circuit = build_circuit(name)
    circuit.validate()
    assert circuit.num_gates > 0
    assert circuit.topological_delay() > 0


def test_builds_are_reproducible():
    from repro.runtime.fingerprint import circuit_fingerprint

    assert (circuit_fingerprint(build_circuit("rand350x5"))
            == circuit_fingerprint(build_circuit("rand350x5")))
    # Different seed, different circuit.
    assert (circuit_fingerprint(build_circuit("rand350x5"))
            != circuit_fingerprint(build_circuit("rand350x23")))


def test_unknown_name_lists_catalog():
    with pytest.raises(ValueError, match="unknown benchmark circuit"):
        build_circuit("rca128")


def test_builders_ignore_global_random_state():
    """Regression: registry builds must be a pure function of the name.

    Seeded builders must use their own private ``random.Random``; a
    builder that reads the *global* generator would produce different
    circuits depending on unrelated code having touched ``random.seed``.
    """
    import random

    from repro.runtime.fingerprint import circuit_fingerprint

    sample = ["rand120x7", "rand350x5", "c880", "ecc32"]
    random.seed(1)
    first = {n: circuit_fingerprint(build_circuit(n)) for n in sample}
    random.seed(999983)
    random.random()
    second = {n: circuit_fingerprint(build_circuit(n)) for n in sample}
    assert first == second


class TestStatsAndRegistration:
    def test_circuit_stats_shape(self):
        from repro.circuits.registry import circuit_stats

        stats = circuit_stats("c17")
        circuit = build_circuit("c17")
        assert stats["inputs"] == len(circuit.inputs)
        assert stats["outputs"] == len(circuit.outputs)
        assert stats["gates"] == circuit.num_gates
        assert stats["delay"] == circuit.topological_delay()
        assert stats["literals"] >= stats["gates"]

    def test_registry_stats_covers_catalog(self):
        from repro.circuits.registry import registry_stats

        table = registry_stats(["c17", "fig1"])
        assert set(table) == {"c17", "fig1"}
        assert all("gates" in row for row in table.values())

    def test_register_and_unregister(self):
        from repro.circuits.registry import (
            circuit_stats,
            register_circuit,
            unregister_circuit,
        )

        register_circuit("tmp_test_circ", lambda: build_circuit("fig1"))
        try:
            assert "tmp_test_circ" in available_circuits()
            assert circuit_stats("tmp_test_circ")["gates"] > 0
            with pytest.raises(ValueError):
                register_circuit(
                    "tmp_test_circ", lambda: build_circuit("fig2")
                )
        finally:
            unregister_circuit("tmp_test_circ")
        assert "tmp_test_circ" not in available_circuits()

    def test_register_rejects_empty_name(self):
        from repro.circuits.registry import register_circuit

        with pytest.raises(ValueError):
            register_circuit("", lambda: build_circuit("fig1"))
