"""Fig. 1 is 'a two-level circuit, resulting from a prime and irredundant
cover' — verify that claim computationally for our reconstruction."""


from repro.boolfn import Cube, Sop, minterms_of, quine_mccluskey
from repro.circuits import fig1_circuit

VARS = ["a", "b", "c", "d"]

#: The reconstruction's cover: f = a'b + ab' + b'c'd'.
COVER = Sop(
    [
        Cube({"a": False, "b": True}),
        Cube({"a": True, "b": False}),
        Cube({"b": False, "c": False, "d": False}),
    ]
)


def evaluate_circuit(minterm):
    circuit = fig1_circuit()
    env = {
        name: bool((minterm >> (3 - i)) & 1) for i, name in enumerate(VARS)
    }
    return circuit.evaluate_outputs(env)["f"]


class TestFig1Cover:
    def test_cover_matches_circuit(self):
        for m in range(16):
            env = {
                name: bool((m >> (3 - i)) & 1)
                for i, name in enumerate(VARS)
            }
            assert COVER.evaluate(env) == evaluate_circuit(m), m

    def test_each_cube_is_prime(self):
        onset = set(minterms_of(COVER, VARS))
        for cube in COVER.cubes:
            # Removing any literal must leave a non-implicant.
            for name in cube.literals:
                relaxed_literals = dict(cube.literals)
                del relaxed_literals[name]
                relaxed = Sop([Cube(relaxed_literals)])
                covered = set(minterms_of(relaxed, VARS))
                assert not covered <= onset, (cube, name)

    def test_cover_is_irredundant(self):
        onset = set(minterms_of(COVER, VARS))
        for skip in range(len(COVER.cubes)):
            reduced = Sop(
                [c for i, c in enumerate(COVER.cubes) if i != skip]
            )
            assert set(minterms_of(reduced, VARS)) != onset, skip

    def test_qm_finds_an_equally_small_cover(self):
        onset = minterms_of(COVER, VARS)
        minimal = quine_mccluskey(onset, VARS)
        assert len(minimal) == len(COVER)
        assert minimal.literal_count() == COVER.literal_count()
