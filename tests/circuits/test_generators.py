import random

import pytest

from repro.circuits import (
    alu,
    array_multiplier,
    carry_skip_adder,
    comparator,
    decoder,
    error_corrector,
    parity_tree,
    random_logic,
    ripple_carry_adder,
)


def bits_to_int(values, names):
    return sum(1 << i for i, name in enumerate(names) if values[name])


class TestRippleCarryAdder:
    def test_exhaustive_4bit(self):
        c = ripple_carry_adder(4)
        for a in range(16):
            for b in range(0, 16, 3):
                for cin in (0, 1):
                    vec = {f"a{i}": bool((a >> i) & 1) for i in range(4)}
                    vec.update(
                        {f"b{i}": bool((b >> i) & 1) for i in range(4)}
                    )
                    vec["cin"] = bool(cin)
                    out = c.evaluate_outputs(vec)
                    total = sum(
                        1 << i for i in range(4) if out[f"fa{i}_s"]
                    )
                    total += 16 if out["fa3_c"] else 0
                    assert total == a + b + cin, (a, b, cin)

    def test_io_counts(self):
        c = ripple_carry_adder(8)
        assert len(c.inputs) == 17 and len(c.outputs) == 9


class TestCarrySkipAdder:
    def test_addition_correct(self):
        c = carry_skip_adder(8, 4)
        rng = random.Random(1)
        for __ in range(60):
            a, b, cin = rng.randrange(256), rng.randrange(256), rng.randint(0, 1)
            vec = {f"a{i}": bool((a >> i) & 1) for i in range(8)}
            vec.update({f"b{i}": bool((b >> i) & 1) for i in range(8)})
            vec["cin"] = bool(cin)
            out = c.evaluate_outputs(vec)
            total = sum(1 << i for i in range(8) if out[f"s{i}"])
            total += 256 if out["bc4"] else 0
            assert total == a + b + cin

    def test_has_false_paths(self):
        from repro.core import compute_floating_delay

        c = carry_skip_adder(8, 4)
        cert = compute_floating_delay(c)
        assert cert.delay < c.topological_delay()

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            carry_skip_adder(10, 4)


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_products(self, width):
        c = array_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                vec = {
                    f"a{i}": bool((a >> i) & 1) for i in range(width)
                }
                vec.update(
                    {f"b{i}": bool((b >> i) & 1) for i in range(width)}
                )
                out = c.evaluate_outputs(vec)
                product = sum(
                    1 << i for i in range(2 * width) if out[f"z{i}"]
                )
                assert product == a * b, (a, b)

    def test_io_counts_16(self):
        c = array_multiplier(16)
        assert len(c.inputs) == 32 and len(c.outputs) == 32

    def test_random_16bit_products(self):
        c = array_multiplier(16)
        rng = random.Random(7)
        for __ in range(10):
            a, b = rng.randrange(1 << 16), rng.randrange(1 << 16)
            vec = {f"a{i}": bool((a >> i) & 1) for i in range(16)}
            vec.update({f"b{i}": bool((b >> i) & 1) for i in range(16)})
            out = c.evaluate_outputs(vec)
            product = sum(1 << i for i in range(32) if out[f"z{i}"])
            assert product == a * b


class TestParityTree:
    @pytest.mark.parametrize("width", [1, 2, 5, 8])
    def test_parity(self, width):
        c = parity_tree(width)
        rng = random.Random(width)
        for __ in range(30):
            vec = {f"x{i}": bool(rng.getrandbits(1)) for i in range(width)}
            expected = sum(vec.values()) % 2 == 1
            assert c.evaluate_outputs(vec)["parity_out"] == expected

    def test_depth_logarithmic(self):
        from repro.sta import gate_depth

        assert gate_depth(parity_tree(16)) <= 6


class TestErrorCorrector:
    def test_io_counts(self):
        c = error_corrector(32, 9, seed=499)
        assert len(c.inputs) == 41 and len(c.outputs) == 32

    def test_deterministic(self):
        left = error_corrector(8, 4, seed=2)
        right = error_corrector(8, 4, seed=2)
        vec = {name: (i % 2 == 0) for i, name in enumerate(left.inputs)}
        assert left.evaluate_outputs(vec) == right.evaluate_outputs(vec)

    def test_clean_codeword_passes_data(self):
        # With checks equal to the computed parities, the syndrome is zero,
        # every decode AND sees a 0 literal, and data passes unchanged.
        c = error_corrector(8, 4, seed=3)
        rng = random.Random(5)
        data = {f"d{i}": bool(rng.getrandbits(1)) for i in range(8)}
        zero_checks = {f"k{i}": False for i in range(4)}
        values = c.evaluate({**data, **zero_checks})
        parities = {f"k{j}": values[f"syn{j}"] for j in range(4)}
        out = c.evaluate_outputs({**data, **parities})
        for i in range(8):
            assert out[f"q{i}"] == data[f"d{i}"]


class TestAlu:
    def test_ops(self):
        c = alu(4)
        rng = random.Random(9)
        for op, fn in [
            ((0, 0), lambda a, b, cin: a & b),
            ((0, 1), lambda a, b, cin: a | b),
            ((1, 0), lambda a, b, cin: a ^ b),
            ((1, 1), lambda a, b, cin: (a + b + cin) & 0xF),
        ]:
            for __ in range(20):
                a, b, cin = rng.randrange(16), rng.randrange(16), rng.randint(0, 1)
                vec = {f"a{i}": bool((a >> i) & 1) for i in range(4)}
                vec.update({f"b{i}": bool((b >> i) & 1) for i in range(4)})
                vec.update({"op1": bool(op[0]), "op0": bool(op[1]),
                            "cin": bool(cin)})
                out = c.evaluate_outputs(vec)
                result = sum(1 << i for i in range(4) if out[f"r{i}"])
                assert result == fn(a, b, cin), (op, a, b, cin)

    def test_carry_out_only_for_add(self):
        c = alu(4)
        vec = {f"a{i}": True for i in range(4)}
        vec.update({f"b{i}": True for i in range(4)})
        vec.update({"op1": False, "op0": False, "cin": True})
        assert not c.evaluate_outputs(vec)["alu_cout"]
        vec.update({"op1": True, "op0": True})
        assert c.evaluate_outputs(vec)["alu_cout"]

    def test_carry_skip_variant_equivalent(self):
        plain = alu(8, with_carry_skip=False)
        skip = alu(8, with_carry_skip=True)
        rng = random.Random(4)
        for __ in range(40):
            vec = {name: bool(rng.getrandbits(1)) for name in plain.inputs}
            assert plain.evaluate_outputs(vec) == skip.evaluate_outputs(vec)


class TestDecoderComparator:
    def test_decoder_one_hot(self):
        c = decoder(3)
        for value in range(8):
            vec = {f"s{i}": bool((value >> i) & 1) for i in range(3)}
            out = c.evaluate_outputs(vec)
            assert sum(out.values()) == 1
            assert out[f"y{value}"]

    def test_comparator(self):
        c = comparator(4)
        rng = random.Random(11)
        for __ in range(60):
            a, b = rng.randrange(16), rng.randrange(16)
            vec = {f"a{i}": bool((a >> i) & 1) for i in range(4)}
            vec.update({f"b{i}": bool((b >> i) & 1) for i in range(4)})
            out = c.evaluate_outputs(vec)
            assert out["is_eq"] == (a == b)
            assert out["is_gt"] == (a > b)


class TestRandomLogic:
    def test_deterministic_and_io_exact(self):
        left = random_logic(10, 4, 30, seed=5)
        right = random_logic(10, 4, 30, seed=5)
        assert len(left.inputs) == 10 and len(left.outputs) == 4
        vec = {n: (i % 3 == 1) for i, n in enumerate(left.inputs)}
        assert left.evaluate_outputs(vec) == right.evaluate_outputs(vec)

    def test_different_seeds_differ(self):
        left = random_logic(10, 4, 30, seed=5)
        right = random_logic(10, 4, 30, seed=6)
        differs = False
        rng = random.Random(0)
        for __ in range(20):
            vec = {n: bool(rng.getrandbits(1)) for n in left.inputs}
            if left.evaluate_outputs(vec) != {
                o: v for o, v in zip(left.outputs, right.evaluate_outputs(vec).values())
            }:
                differs = True
                break
        assert differs or left.outputs != right.outputs

    def test_needs_enough_gates(self):
        with pytest.raises(ValueError):
            random_logic(4, 10, 5, seed=0)
