import pytest

from repro.circuits import iscas



class TestC17:
    def test_exact_netlist(self):
        c = iscas.c17()
        assert c.num_gates == 6
        assert len(c.inputs) == 5 and len(c.outputs) == 2
        out = c.evaluate_outputs({"G1": 1, "G2": 0, "G3": 1, "G6": 1, "G7": 0})
        assert out == {"G22": True, "G23": False}


class TestStandins:
    def test_available_matches_paper_table(self):
        assert iscas.available() == list(iscas.PAPER_TABLE1)

    @pytest.mark.parametrize("name", iscas.available())
    def test_io_counts_match_table1(self, name):
        circuit = iscas.build(name)
        inputs, outputs, __, __ = iscas.PAPER_TABLE1[name]
        assert len(circuit.inputs) == inputs, name
        assert len(circuit.outputs) == outputs, name

    @pytest.mark.parametrize("name", iscas.available())
    def test_builds_are_deterministic(self, name):
        left = iscas.build(name)
        right = iscas.build(name)
        vec = {n: (i % 2 == 0) for i, n in enumerate(left.inputs)}
        assert left.evaluate_outputs(vec) == right.evaluate_outputs(vec)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            iscas.build("c9999")

    def test_c6288_is_a_multiplier(self):
        c = iscas.build("c6288")
        vec = {f"a{i}": bool((1234 >> i) & 1) for i in range(16)}
        vec.update({f"b{i}": bool((567 >> i) & 1) for i in range(16)})
        out = c.evaluate_outputs(vec)
        product = sum(1 << i for i in range(32) if out[f"z{i}"])
        assert product == 1234 * 567

    def test_c1355_equivalent_to_c499(self):
        left = iscas.build("c499")
        right = iscas.build("c1355")
        assert set(left.inputs) == set(right.inputs)
        import random

        rng = random.Random(3)
        for __ in range(25):
            vec = {n: bool(rng.getrandbits(1)) for n in left.inputs}
            assert left.evaluate_outputs(vec) == right.evaluate_outputs(vec)

    def test_c1355_is_nand_heavy(self):
        from repro.network import GateType

        c = iscas.build("c1355")
        assert not any(
            node.gate_type in (GateType.XOR, GateType.XNOR)
            for node in c.nodes()
            if len(node.fanins) == 2
        )

    def test_false_path_circuits_have_gaps(self):
        """The stand-ins for the paper's f.d. < l.d. rows embed carry-skip
        cores, so the gap must exist."""
        from repro.core import compute_floating_delay

        c = iscas.build("c1908")
        cert = compute_floating_delay(c, search="binary")
        assert cert.delay < c.topological_delay()
