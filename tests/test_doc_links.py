"""Every relative cross-link in the documentation set must resolve.

Walks ``README.md`` and ``docs/*.md`` for inline markdown links,
skipping fenced code blocks and external URLs.  File targets must exist;
fragment targets (``FILE.md#anchor``) must match a heading in the target
file under GitHub's anchor-slug rules.  This is the acceptance check
that the documentation set cannot silently rot.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _doc_files():
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def _links(path):
    """(lineno, target) for every inline link outside fenced code."""
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def _github_slug(heading):
    """GitHub's markdown anchor: lowercase, strip punctuation, spaces
    become hyphens (inline code markers are dropped with the rest)."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path):
    anchors = set()
    in_fence = False
    counts = {}
    for line in path.read_text().splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


@pytest.mark.parametrize(
    "doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_all_relative_links_resolve(doc):
    problems = []
    for lineno, target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (
            doc if not file_part else (doc.parent / file_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{doc.name}:{lineno}: broken link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                problems.append(
                    f"{doc.name}:{lineno}: no anchor #{fragment} "
                    f"in {resolved.name}"
                )
    assert not problems, "\n".join(problems)


def test_docs_index_lists_every_doc_file():
    index = (REPO_ROOT / "docs" / "README.md").read_text()
    for path in sorted((REPO_ROOT / "docs").glob("*.md")):
        if path.name == "README.md":
            continue
        assert f"({path.name})" in index, (
            f"docs/README.md does not link {path.name}"
        )
