"""Every relative cross-link in the documentation set must resolve.

Walks ``README.md`` and ``docs/*.md`` for inline markdown links,
skipping fenced code blocks and external URLs.  File targets must exist;
fragment targets (``FILE.md#anchor``) must match a heading in the target
file under GitHub's anchor-slug rules.  Section references in the
``§N``/``§N.M`` style — intra-page, following a link to another doc, or
cited from source/test files as ``DISTRIBUTED.md §N`` — must name a
numbered heading that actually exists.  This is the acceptance check
that the documentation set cannot silently rot.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _doc_files():
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def _links(path):
    """(lineno, target) for every inline link outside fenced code."""
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def _github_slug(heading):
    """GitHub's markdown anchor: lowercase, strip punctuation, spaces
    become hyphens (inline code markers are dropped with the rest)."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path):
    anchors = set()
    in_fence = False
    counts = {}
    for line in path.read_text().splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


@pytest.mark.parametrize(
    "doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_all_relative_links_resolve(doc):
    problems = []
    for lineno, target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (
            doc if not file_part else (doc.parent / file_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{doc.name}:{lineno}: broken link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                problems.append(
                    f"{doc.name}:{lineno}: no anchor #{fragment} "
                    f"in {resolved.name}"
                )
    assert not problems, "\n".join(problems)


def test_docs_index_lists_every_doc_file():
    index = (REPO_ROOT / "docs" / "README.md").read_text()
    for path in sorted((REPO_ROOT / "docs").glob("*.md")):
        if path.name == "README.md":
            continue
        assert f"({path.name})" in index, (
            f"docs/README.md does not link {path.name}"
        )


_NUMBERED_HEADING = re.compile(r"^#{1,6}\s+(\d+(?:\.\d+)*)[.\s]")
# A `§N` (or `§N.M`, or a `§N–§M` range) reference, optionally preceded
# by a markdown link to the doc it refers to: `[RUNTIME.md](RUNTIME.md)
# §4` binds to RUNTIME.md; a bare `§3.3` binds to the page it is on.
_SECTION_REF = re.compile(
    r"(?:\]\(([^)#\s]+\.md)\)\s*)?"
    r"§(\d+(?:\.\d+)?)(?:\s*[–-]\s*§(\d+(?:\.\d+)?))?"
)


def _numbered_sections(path):
    """Section numbers ("3", "3.3", ...) of a doc's numbered headings."""
    sections = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _NUMBERED_HEADING.match(line)
        if match:
            number = match.group(1)
            sections.add(number)
            # §3.3 implies §3 is referenceable too.
            sections.add(number.split(".")[0])
    return sections


_LINK_WITH_TEXT = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
_BARE_SECTION = re.compile(r"§(\d+(?:\.\d+)?)")


def _section_refs(path):
    """(lineno, target-doc-path, section-number) triples for a doc."""
    refs = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue

        # `[RUNTIME.md §1](RUNTIME.md#...)` — a § inside link text binds
        # to the link's target doc.  Consume these first so the generic
        # scan below does not misread them as intra-page references.
        def _bind_link_text(match):
            text, target = match.group(1), match.group(2)
            file_part = target.partition("#")[0]
            if file_part.endswith(".md"):
                resolved = (path.parent / file_part).resolve()
                for sec in _BARE_SECTION.finditer(text):
                    refs.append((lineno, resolved, sec.group(1)))
                return ""
            return match.group(0)

        line = _LINK_WITH_TEXT.sub(_bind_link_text, line)
        for match in _SECTION_REF.finditer(line):
            target = (
                (path.parent / match.group(1)).resolve()
                if match.group(1)
                else path
            )
            for number in (match.group(2), match.group(3)):
                if number is not None:
                    refs.append((lineno, target, number))
    return refs


@pytest.mark.parametrize(
    "doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_section_references_name_real_sections(doc):
    problems = []
    for lineno, target, number in _section_refs(doc):
        if not target.exists():
            # the broken-file case is already reported by the link test
            continue
        if number not in _numbered_sections(target):
            problems.append(
                f"{doc.name}:{lineno}: §{number} does not match any "
                f"numbered heading in {target.name}"
            )
    assert not problems, "\n".join(problems)


_CODE_CITATION = re.compile(r"docs/([A-Z_]+\.md)\s+§(\d+(?:\.\d+)?)")


def test_code_section_citations_name_real_sections():
    """Spec citations in source and tests (``docs/DISTRIBUTED.md §4.2``)
    must point at numbered headings that exist — the code<->spec
    cross-references are load-bearing, not decorative."""
    problems = []
    for root in ("src", "tests", "benchmarks"):
        for path in sorted((REPO_ROOT / root).rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text().splitlines(), 1
            ):
                for match in _CODE_CITATION.finditer(line):
                    target = REPO_ROOT / "docs" / match.group(1)
                    rel = path.relative_to(REPO_ROOT)
                    if not target.exists():
                        problems.append(
                            f"{rel}:{lineno}: cites missing doc "
                            f"{match.group(1)}"
                        )
                    elif (
                        match.group(2)
                        not in _numbered_sections(target)
                    ):
                        problems.append(
                            f"{rel}:{lineno}: §{match.group(2)} does "
                            f"not match any numbered heading in "
                            f"{match.group(1)}"
                        )
    assert not problems, "\n".join(problems)
