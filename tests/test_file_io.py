"""File-based load/dump helpers across all formats."""


from repro.fsm import dump_kiss, load_kiss, loads_kiss
from repro.network import (
    dump_bench,
    dump_blif,
    dump_verilog,
    load_bench,
    load_blif,
    load_verilog,
)
from repro.sim import EventSimulator, dump_vcd, loads_vcd

from tests.helpers import assert_same_function, c17

KISS = """
.i 1
.o 1
.r a
1 a b 1
0 a a 0
- b a 0
"""


class TestNetlistFiles:
    def test_bench_file_roundtrip(self, tmp_path):
        path = tmp_path / "c.bench"
        dump_bench(c17(), str(path))
        again = load_bench(str(path))
        assert_same_function(c17(), again)

    def test_blif_file_roundtrip(self, tmp_path):
        path = tmp_path / "c.blif"
        dump_blif(c17(), str(path))
        again = load_blif(str(path))
        assert_same_function(c17(), again)

    def test_verilog_file_roundtrip(self, tmp_path):
        path = tmp_path / "c.v"
        dump_verilog(c17(), str(path))
        again = load_verilog(str(path))
        assert_same_function(c17(), again)

    def test_load_bench_default_name_is_path(self, tmp_path):
        path = tmp_path / "thing.bench"
        dump_bench(c17(), str(path))
        assert load_bench(str(path)).name == str(path)


class TestKissFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "m.kiss2"
        fsm = loads_kiss(KISS, "m")
        dump_kiss(fsm, str(path))
        again = load_kiss(str(path), "m")
        assert again.transitions == fsm.transitions
        assert again.reset_state == fsm.reset_state


class TestVcdFiles:
    def test_dump_and_parse(self, tmp_path):
        path = tmp_path / "run.vcd"
        sim = EventSimulator(c17())
        result = sim.simulate_transition(
            {"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0},
            {"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1},
        )
        dump_vcd(result.waveforms, str(path))
        parsed = loads_vcd(path.read_text())
        assert set(parsed.names()) == set(result.waveforms.names())
