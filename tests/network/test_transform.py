import pytest

from repro.network import (
    CircuitBuilder,
    GateType,
    apply_speedup,
    insert_wire_delay,
    limit_fanin,
    normalize_delays,
    refined_delay_annotation,
    scale_delays,
)

from tests.helpers import assert_same_function, c17


def multi_delay_circuit():
    b = CircuitBuilder("md")
    a, x = b.inputs("a", "x")
    g = b.and_(a, x, name="g", delay=3)
    h = b.not_(g, name="h", delay=2)
    b.output(h)
    return b.build()


class TestNormalizeDelays:
    def test_all_delays_at_most_one(self):
        n = normalize_delays(multi_delay_circuit())
        assert all(node.delay <= 1 for node in n.nodes())

    def test_topological_delay_preserved(self):
        c = multi_delay_circuit()
        assert normalize_delays(c).topological_delay() == c.topological_delay()

    def test_function_preserved(self):
        c = multi_delay_circuit()
        assert_same_function(c, normalize_delays(c))

    def test_signal_names_preserved(self):
        n = normalize_delays(multi_delay_circuit())
        assert "g" in n and "h" in n
        assert n.outputs == ["h"]

    def test_unit_circuit_unchanged(self):
        c = c17()
        n = normalize_delays(c)
        assert n.num_gates == c.num_gates


class TestSpeedup:
    def test_lowers_delay(self):
        c = multi_delay_circuit()
        sped = apply_speedup(c, {"g": 1})
        assert sped.node("g").delay == 1
        assert c.node("g").delay == 3  # original untouched

    def test_rejects_slowdown(self):
        with pytest.raises(ValueError):
            apply_speedup(multi_delay_circuit(), {"g": 4})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            apply_speedup(multi_delay_circuit(), {"g": -1})


class TestScaleDelays:
    def test_scales(self):
        c = multi_delay_circuit()
        assert scale_delays(c, 3).topological_delay() == 3 * c.topological_delay()

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            scale_delays(multi_delay_circuit(), 0)


class TestRefinedAnnotation:
    def test_function_preserved(self):
        c = c17()
        assert_same_function(c, refined_delay_annotation(c))

    def test_fanout_loading(self):
        c = c17()
        refined = refined_delay_annotation(c, base_scale=4, load_per_fanout=1)
        # G16 feeds two gates, G22 feeds none.
        assert refined.node("G16").delay == 4 + 2
        assert refined.node("G22").delay == 4

    def test_custom_model(self):
        c = c17()
        refined = refined_delay_annotation(c, custom=lambda name: 9)
        assert all(
            node.delay == 9
            for node in refined.nodes()
            if node.gate_type != GateType.INPUT
        )


class TestLimitFanin:
    def test_wide_and_decomposed(self):
        b = CircuitBuilder("w")
        ins = b.inputs(*[f"x{i}" for i in range(9)])
        g = b.and_(*ins, name="g")
        b.output(g)
        c = b.build()
        mapped = limit_fanin(c, 3)
        assert all(len(n.fanins) <= 3 for n in mapped.nodes())
        assert_same_function(c, mapped)

    def test_inverting_root_preserved(self):
        b = CircuitBuilder("w2")
        ins = b.inputs(*[f"x{i}" for i in range(6)])
        g = b.nor(*ins, name="g")
        b.output(g)
        c = b.build()
        mapped = limit_fanin(c, 2)
        assert all(len(n.fanins) <= 2 for n in mapped.nodes())
        assert_same_function(c, mapped)

    def test_xnor_decomposition(self):
        b = CircuitBuilder("w3")
        ins = b.inputs(*[f"x{i}" for i in range(5)])
        g = b.xnor(*ins, name="g")
        b.output(g)
        c = b.build()
        assert_same_function(c, limit_fanin(c, 2))

    def test_rejects_limit_below_two(self):
        with pytest.raises(ValueError):
            limit_fanin(c17(), 1)

    def test_narrow_gates_untouched(self):
        c = c17()
        mapped = limit_fanin(c, 4)
        assert mapped.num_gates == c.num_gates


class TestWireDelay:
    def test_inserts_buffer(self):
        c = c17()
        wired = insert_wire_delay(c, "G10", "G22", 5)
        # Longest path is now G1/G3 -> G10 -> wire(5) -> G22.
        assert wired.topological_delay() == 1 + 5 + 1
        assert_same_function(c, wired)


class TestTransformNaming:
    """Fresh-circuit transforms append ``#<transform>`` to the name, so
    the content fingerprint always differs from the source — even when
    the transform changed no delay (identity speedup, factor-1 scale)."""

    def test_names_are_normalized(self):
        c = c17()
        assert apply_speedup(c, {}).name == "c17#speedup"
        assert scale_delays(c, 1).name == "c17#scale"
        assert insert_wire_delay(c, "G10", "G22", 1).name == "c17#wire"

    def test_fingerprints_differ_from_source(self):
        from repro.runtime import circuit_fingerprint

        c = c17()
        source = circuit_fingerprint(c)
        for transformed in (
            apply_speedup(c, {}),  # no delay actually lowered
            scale_delays(c, 1),  # factor 1: delays unchanged
            insert_wire_delay(c, "G10", "G22", 1),
            refined_delay_annotation(c),
        ):
            assert circuit_fingerprint(transformed) != source

    def test_delay_only_transforms_keep_structure_caches(self):
        """scale_delays/apply_speedup go through copy + delay edits, so
        the copied topological order survives the transform."""
        c = c17()
        c.topological_order()
        scaled = scale_delays(c, 3)
        assert scaled._topo_cache is not None
        assert scaled._fanout_cache is not None
        sped = apply_speedup(c, {"G10": 0})
        assert sped._topo_cache is not None
