import pytest

from repro.network import Circuit, CircuitBuilder, GateType

from tests.helpers import c17


class TestConstruction:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_input("a")

    def test_input_via_add_gate_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_gate("a", GateType.INPUT)

    def test_unary_arity_enforced(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        with pytest.raises(ValueError):
            c.add_gate("n", GateType.NOT, ["a", "b"])

    def test_gate_needs_fanins(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_gate("g", GateType.AND, [])

    def test_negative_delay_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate("g", GateType.BUF, ["a"], delay=-1)

    def test_validate_missing_fanin(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.BUF, ["ghost"])
        with pytest.raises(ValueError):
            c.validate()

    def test_validate_missing_output(self):
        c = Circuit()
        c.add_input("a")
        c.set_outputs(["nope"])
        with pytest.raises(ValueError):
            c.validate()

    def test_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g1", GateType.AND, ["a", "g2"])
        c.add_gate("g2", GateType.BUF, ["g1"])
        with pytest.raises(ValueError):
            c.topological_order()


class TestStructure:
    def test_c17_counts(self):
        c = c17()
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert c.num_gates == 6
        assert c.literal_count() == 12
        assert len(c) == 11

    def test_topological_order_respects_edges(self):
        c = c17()
        order = {name: i for i, name in enumerate(c.topological_order())}
        for node in c.nodes():
            for fanin in node.fanins:
                assert order[fanin] < order[node.name]

    def test_fanouts_inverse_of_fanins(self):
        c = c17()
        fanouts = c.fanouts()
        for node in c.nodes():
            for fanin in node.fanins:
                assert node.name in fanouts[fanin]

    def test_levels(self):
        c = c17()
        levels = c.levels()
        assert levels["G1"] == 0
        assert levels["G10"] == 1
        assert levels["G22"] == 3
        assert c.topological_delay() == 3

    def test_min_levels(self):
        b = CircuitBuilder("m")
        a, x = b.inputs("a", "x")
        slow = b.buf(a, name="slow", delay=5)
        g = b.and_(slow, x, name="g")
        b.output(g)
        c = b.build()
        assert c.min_levels()["g"] == 1
        assert c.levels()["g"] == 6

    def test_residual_delays(self):
        c = c17()
        residual = c.residual_delays()
        assert residual["G22"] == 0
        assert residual["G10"] == 1
        # From G1 an event traverses G10 and G22 (one unit each).
        assert residual["G1"] == 2

    def test_residual_of_dangling_node(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("used", GateType.BUF, ["a"])
        c.add_gate("dangling", GateType.NOT, ["a"])
        c.set_outputs(["used"])
        assert c.residual_delays()["dangling"] == -1

    def test_transitive_fanin(self):
        c = c17()
        cone = c.transitive_fanin(["G22"])
        assert "G19" not in cone and "G7" not in cone
        assert {"G1", "G2", "G3", "G6", "G10", "G11", "G16", "G22"} == set(cone)


class TestEvaluation:
    def test_known_vector(self):
        c = c17()
        out = c.evaluate_outputs(
            {"G1": 1, "G2": 0, "G3": 1, "G6": 1, "G7": 0}
        )
        assert out == {"G22": True, "G23": False}

    def test_copy_preserves_function_and_delays(self):
        c = c17()
        c.set_delay("G10", 7)
        clone = c.copy()
        assert clone.node("G10").delay == 7
        vec = {"G1": 1, "G2": 1, "G3": 0, "G6": 1, "G7": 1}
        assert clone.evaluate_outputs(vec) == c.evaluate_outputs(vec)

    def test_outputs_must_exist_for_topological_delay(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.topological_delay()

    def test_repr(self):
        assert "c17" in repr(c17())
