import itertools

import pytest

from repro.boolfn import BddEngine, SatEngine
from repro.network.symbolic import (
    circuit_function,
    circuit_functions,
    circuits_equivalent,
)
from repro.network import CircuitBuilder

from tests.helpers import c17, tiny_and_or


@pytest.fixture(params=[BddEngine, SatEngine])
def engine(request):
    return request.param()


class TestCircuitFunction:
    def test_matches_evaluation(self, engine):
        c = tiny_and_or()
        f = circuit_function(engine, c, "f")
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(["a", "b", "c"], bits))
            assert engine.evaluate(f, env) == c.evaluate(env)["f"]

    def test_custom_input_var(self, engine):
        c = tiny_and_or()
        f = circuit_function(
            engine, c, "f", input_var=lambda n: engine.var(n + "@-")
        )
        env = {"a@-": True, "b@-": True, "c@-": False}
        assert engine.evaluate(f, env) is True

    def test_shared_traversal(self, engine):
        c = c17()
        fns = circuit_functions(engine, c, ["G22", "G23"])
        vec = {"G1": 1, "G2": 0, "G3": 1, "G6": 1, "G7": 0}
        values = c.evaluate(vec)
        env = {k: bool(v) for k, v in vec.items()}
        assert engine.evaluate(fns["G22"], env) == values["G22"]
        assert engine.evaluate(fns["G23"], env) == values["G23"]


class TestEquivalence:
    def test_equivalent_restructuring(self, engine):
        b1 = CircuitBuilder("one")
        a, c = b1.inputs("a", "c")
        b1.output(b1.nand(a, c, name="f"))
        left = b1.build()

        b2 = CircuitBuilder("two")
        a, c = b2.inputs("a", "c")
        g = b2.and_(a, c, name="g")
        b2.output(b2.not_(g, name="f"))
        right = b2.build()
        assert circuits_equivalent(engine, left, right)

    def test_inequivalent_detected(self, engine):
        b1 = CircuitBuilder("one")
        a, c = b1.inputs("a", "c")
        b1.output(b1.and_(a, c, name="f"))
        left = b1.build()

        b2 = CircuitBuilder("two")
        a, c = b2.inputs("a", "c")
        b2.output(b2.or_(a, c, name="f"))
        right = b2.build()
        assert not circuits_equivalent(engine, left, right)

    def test_io_mismatch_rejected(self, engine):
        with pytest.raises(ValueError):
            circuits_equivalent(engine, c17(), tiny_and_or())
