import pytest

from repro.network import (
    CircuitBuilder,
    count_paths,
    enumerate_paths,
    is_statically_sensitizable,
    k_longest_paths,
    longest_path,
    path_length,
    side_inputs,
)
from repro.circuits import fig2_circuit

from tests.helpers import c17


class TestEnumeration:
    def test_c17_path_count(self):
        c = c17()
        paths = list(enumerate_paths(c))
        assert len(paths) == 11
        assert count_paths(c) == 11

    def test_paths_are_input_to_output(self):
        c = c17()
        for path in enumerate_paths(c):
            assert path[0] in c.inputs
            assert path[-1] in c.outputs

    def test_limit_enforced(self):
        c = c17()
        with pytest.raises(RuntimeError):
            list(enumerate_paths(c, limit=3))


class TestLongest:
    def test_longest_path_length_matches_topological(self):
        c = c17()
        assert path_length(c, longest_path(c)) == c.topological_delay()

    def test_k_longest_matches_enumeration(self):
        c = c17()
        lengths = sorted(
            (path_length(c, p) for p in enumerate_paths(c)), reverse=True
        )
        klp = k_longest_paths(c, len(lengths) + 5)
        assert [l for l, __ in klp] == lengths

    def test_k_longest_truncates(self):
        c = c17()
        assert len(k_longest_paths(c, 3)) == 3

    def test_k_longest_descending(self):
        c = fig2_circuit()
        klp = k_longest_paths(c, 10)
        values = [l for l, __ in klp]
        assert values == sorted(values, reverse=True)
        assert values[0] == 6

    def test_output_with_fanout_still_reported(self):
        b = CircuitBuilder("of")
        a, = b.inputs("a")
        mid = b.buf(a, name="mid")
        end = b.not_(mid, name="end")
        b.output(mid)
        b.output(end)
        c = b.build()
        klp = k_longest_paths(c, 10)
        found = {tuple(p) for __, p in klp}
        assert ("a", "mid") in found
        assert ("a", "mid", "end") in found


class TestSideInputs:
    def test_fig2_critical_path_side_inputs(self):
        c = fig2_circuit()
        sides = side_inputs(c, ["a", "x1", "x2", "x3", "d", "e"])
        assert ("d", "b") in sides
        assert ("e", "c") in sides
        assert len(sides) == 2

    def test_fig2_path_statically_sensitizable(self):
        c = fig2_circuit()
        vector = is_statically_sensitizable(
            c, ["a", "x1", "x2", "x3", "d", "e"]
        )
        # The paper: <a=1> statically sensitizes {a, d, e}.
        assert vector == {"a": True}

    def test_reconvergent_path_is_statically_sensitizable(self):
        # Static sensitization only inspects steady-state side-input
        # values: the path a -> g in (g = a AND NOT a) *is* statically
        # sensitizable by a=0 even though g is constant — exactly the
        # optimism the paper warns about.
        b = CircuitBuilder("u")
        a, = b.inputs("a")
        na = b.not_(a, name="na")
        g = b.and_(a, na, name="g")
        b.output(g)
        c = b.build()
        assert is_statically_sensitizable(c, ["a", "g"]) == {"a": False}

    def test_unsensitizable_path(self):
        # Side inputs demand b=1 at gate g and b=0 at gate h: impossible.
        b = CircuitBuilder("u2")
        a, bb = b.inputs("a", "bb")
        nb = b.not_(bb, name="nb")
        g = b.and_(a, bb, name="g")
        h = b.and_(g, nb, name="h")
        b.output(h)
        c = b.build()
        assert is_statically_sensitizable(c, ["a", "g", "h"]) is None
