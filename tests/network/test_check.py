from repro.network import CircuitBuilder, GateType, lint

from tests.helpers import c17


class TestLint:
    def test_clean_circuit(self):
        assert lint(c17()) == []

    def test_unused_input(self):
        b = CircuitBuilder("u")
        a, x = b.inputs("a", "x")
        b.output(b.not_(a, name="f"))
        findings = lint(b.build())
        assert any(
            f.code == "unused-input" and f.node == "x" for f in findings
        )

    def test_dangling_gate(self):
        b = CircuitBuilder("d")
        a, = b.inputs("a")
        b.not_(a, name="dead")
        b.output(b.buf(a, name="f"))
        findings = lint(b.build())
        assert any(f.code == "dangling-gate" for f in findings)

    def test_duplicate_fanin(self):
        b = CircuitBuilder("dup")
        a, = b.inputs("a")
        g = b.gate(GateType.AND, [a, a], name="g")
        b.output(g)
        findings = lint(b.build())
        assert any(f.code == "duplicate-fanin" for f in findings)

    def test_constant_driver_and_degenerate(self):
        b = CircuitBuilder("k")
        a, = b.inputs("a")
        k = b.const1()
        g = b.gate(GateType.AND, [k], name="g")
        b.output(g)
        findings = lint(b.build())
        codes = {f.code for f in findings}
        assert "constant-driver" in codes
        assert "degenerate-gate" in codes

    def test_zero_delay_flagged(self):
        b = CircuitBuilder("z")
        a, = b.inputs("a")
        g = b.buf(a, name="g", delay=0)
        b.output(g)
        findings = lint(b.build())
        assert any(f.code == "zero-delay-gate" for f in findings)

    def test_warnings_sorted_first(self):
        b = CircuitBuilder("s")
        a, x = b.inputs("a", "x")
        g = b.buf(a, name="g", delay=0)
        b.output(g)
        findings = lint(b.build())
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=lambda s: 0 if s == "warning" else 1
        )

    def test_str_rendering(self):
        b = CircuitBuilder("r")
        a, x = b.inputs("a", "x")
        b.output(b.buf(a, name="f"))
        findings = lint(b.build())
        assert "unused-input" in str(findings[0])
