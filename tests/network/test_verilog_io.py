import pytest

from repro.network import dumps_verilog, loads_verilog

from tests.helpers import assert_same_function, c17

C17_VERILOG = """
// the public six-NAND circuit
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  output G22, G23;
  wire G10, G11, G16, G19;
  nand U1 (G10, G1, G3);
  nand U2 (G11, G3, G6);
  nand U3 (G16, G2, G11);
  nand U4 (G19, G11, G7);
  nand U5 (G22, G10, G16);
  nand U6 (G23, G16, G19);
endmodule
"""


class TestParsing:
    def test_c17(self):
        circuit = loads_verilog(C17_VERILOG)
        assert circuit.name == "c17"
        assert_same_function(c17(), circuit)

    def test_delay_annotations(self):
        text = """
module d (a, f);
  input a;
  output f;
  wire w;
  buf #3 U1 (w, a);
  not U2 (f, w);
endmodule
"""
        circuit = loads_verilog(text)
        assert circuit.node("w").delay == 3
        assert circuit.node("f").delay == 1
        assert circuit.topological_delay() == 4

    def test_unnamed_instances(self):
        text = """
module u (a, b, f);
  input a, b;
  output f;
  and (f, a, b);
endmodule
"""
        circuit = loads_verilog(text)
        assert circuit.evaluate_outputs({"a": 1, "b": 1}) == {"f": True}

    def test_block_comments_stripped(self):
        text = """
module m (a, f); /* header
spanning lines */
  input a; output f;
  not (f, a); // trailing
endmodule
"""
        circuit = loads_verilog(text)
        assert circuit.evaluate_outputs({"a": 0}) == {"f": True}

    def test_missing_module_rejected(self):
        with pytest.raises(ValueError):
            loads_verilog("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(ValueError):
            loads_verilog("module m (a); input a;")

    def test_empty_module_rejected(self):
        with pytest.raises(ValueError):
            loads_verilog("module m (a); input a; endmodule")

    def test_unary_arity_enforced(self):
        with pytest.raises(ValueError):
            loads_verilog(
                "module m (a, b, f); input a, b; output f;"
                " not (f, a, b); endmodule"
            )


class TestRoundTrip:
    def test_c17_roundtrip(self):
        circuit = c17()
        again = loads_verilog(dumps_verilog(circuit))
        assert_same_function(circuit, again)

    def test_delays_preserved(self):
        from repro.circuits import fig1_circuit

        circuit = fig1_circuit()
        again = loads_verilog(dumps_verilog(circuit))
        for node in circuit.nodes():
            assert again.node(node.name).delay == node.delay
        assert_same_function(circuit, again)

    def test_verilog_preserves_what_bench_drops(self):
        from repro.network import dumps_bench, loads_bench
        from repro.circuits import fig1_circuit

        circuit = fig1_circuit()
        via_bench = loads_bench(dumps_bench(circuit))
        via_verilog = loads_verilog(dumps_verilog(circuit))
        assert via_bench.node("nb3").delay == 1       # lost
        assert via_verilog.node("nb3").delay == 3     # kept

    def test_const_gates_rejected(self):
        from repro.network import CircuitBuilder

        b = CircuitBuilder("k")
        b.input("a")
        k = b.const1()
        b.output(k)
        with pytest.raises(ValueError):
            dumps_verilog(b.build())
