import pytest

from repro.network import CircuitBuilder, GateType


class TestBuilder:
    def test_auto_names_unique(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        g1 = b.and_(a, c)
        g2 = b.and_(a, c, delay=2)
        assert g1 != g2

    def test_named_gates(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.not_(a, name="inv", delay=3)
        assert g == "inv"
        assert b.circuit.node("inv").delay == 3

    def test_all_helpers(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "c")
        nodes = [
            b.and_(a, c), b.nand(a, c), b.or_(a, c), b.nor(a, c),
            b.xor_(a, c), b.xnor(a, c), b.not_(a), b.buf(c),
            b.const0(), b.const1(),
        ]
        f = b.or_(*nodes[:4])
        b.output(f)
        circuit = b.build()
        assert circuit.num_gates == 11

    def test_build_validates(self):
        b = CircuitBuilder()
        b.input("a")
        b.circuit.set_outputs(["ghost"])
        with pytest.raises(ValueError):
            b.build()

    def test_output_dedup(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.buf(a)
        b.output(g)
        b.output(g)
        assert b.build().outputs == [g]

    def test_const_gates_have_no_delay(self):
        b = CircuitBuilder()
        k = b.const1()
        assert b.circuit.node(k).delay == 0
        assert b.circuit.node(k).gate_type == GateType.CONST1
