import pytest

from repro.network import dumps_blif, loads_blif

from tests.helpers import assert_same_function, c17


class TestParsing:
    def test_simple_model(self):
        text = """
.model demo
.inputs a b
.outputs f
.names a b f
11 1
.end
"""
        c = loads_blif(text)
        assert c.name == "demo"
        assert c.evaluate_outputs({"a": True, "b": True}) == {"f": True}
        assert c.evaluate_outputs({"a": True, "b": False}) == {"f": False}

    def test_offset_cover(self):
        text = """
.model off
.inputs a b
.outputs f
.names a b f
11 0
.end
"""
        c = loads_blif(text)
        assert c.evaluate_outputs({"a": True, "b": True}) == {"f": False}
        assert c.evaluate_outputs({"a": False, "b": True}) == {"f": True}

    def test_dont_care_columns(self):
        text = """
.inputs a b c
.outputs f
.names a b c f
1-0 1
01- 1
"""
        c = loads_blif(text)
        assert c.evaluate_outputs({"a": 1, "b": 0, "c": 0})["f"]
        assert c.evaluate_outputs({"a": 0, "b": 1, "c": 1})["f"]
        assert not c.evaluate_outputs({"a": 0, "b": 0, "c": 1})["f"]

    def test_constant_one(self):
        text = ".inputs a\n.outputs f\n.names f\n1\n.end\n"
        c = loads_blif(text)
        assert c.evaluate_outputs({"a": False}) == {"f": True}

    def test_constant_zero(self):
        text = ".inputs a\n.outputs f\n.names f\n.end\n"
        c = loads_blif(text)
        assert c.evaluate_outputs({"a": True}) == {"f": False}

    def test_mixed_cover_rejected(self):
        text = ".inputs a\n.outputs f\n.names a f\n1 1\n0 0\n"
        with pytest.raises(ValueError):
            loads_blif(text)

    def test_unsupported_directive_rejected(self):
        with pytest.raises(ValueError):
            loads_blif(".inputs a\n.latch a b\n")

    def test_row_outside_names_rejected(self):
        with pytest.raises(ValueError):
            loads_blif(".inputs a\n11 1\n")

    def test_continuation_lines(self):
        text = ".inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n"
        c = loads_blif(text)
        assert set(c.inputs) == {"a", "b"}


class TestRoundTrip:
    def test_c17(self):
        c = c17()
        again = loads_blif(dumps_blif(c))
        assert_same_function(c, again)

    def test_xor_gates(self):
        from repro.circuits import parity_tree

        c = parity_tree(5)
        again = loads_blif(dumps_blif(c))
        vec = {name: (i % 2 == 0) for i, name in enumerate(c.inputs)}
        assert again.evaluate_outputs(vec) == c.evaluate_outputs(vec)

    def test_intermediate_signals_preserved(self):
        c = c17()
        text = dumps_blif(c)
        assert ".names G3 G6 G11" in text
