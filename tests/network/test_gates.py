import itertools

import pytest

from repro.boolfn import BddEngine
from repro.network import (
    GateType,
    controlling_value,
    evaluate_gate,
    gate_function,
    gate_settle,
    is_inverting,
    noncontrolling_value,
)

BINARY_GATES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestControllingValues:
    def test_and_family(self):
        assert controlling_value(GateType.AND) is False
        assert controlling_value(GateType.NAND) is False
        assert noncontrolling_value(GateType.AND) is True

    def test_or_family(self):
        assert controlling_value(GateType.OR) is True
        assert controlling_value(GateType.NOR) is True
        assert noncontrolling_value(GateType.NOR) is False

    def test_xor_has_none(self):
        assert controlling_value(GateType.XOR) is None
        assert noncontrolling_value(GateType.XNOR) is None

    def test_inverting(self):
        assert is_inverting(GateType.NAND)
        assert is_inverting(GateType.NOT)
        assert not is_inverting(GateType.AND)
        assert not is_inverting(GateType.BUF)


class TestEvaluateGate:
    @pytest.mark.parametrize("gate", BINARY_GATES)
    def test_matches_python_semantics(self, gate):
        reference = {
            GateType.AND: lambda a, b: a and b,
            GateType.NAND: lambda a, b: not (a and b),
            GateType.OR: lambda a, b: a or b,
            GateType.NOR: lambda a, b: not (a or b),
            GateType.XOR: lambda a, b: a != b,
            GateType.XNOR: lambda a, b: a == b,
        }[gate]
        for a, b in itertools.product([False, True], repeat=2):
            assert evaluate_gate(gate, [a, b]) == reference(a, b)

    def test_unary_and_constants(self):
        assert evaluate_gate(GateType.NOT, [False]) is True
        assert evaluate_gate(GateType.BUF, [True]) is True
        assert evaluate_gate(GateType.CONST0, []) is False
        assert evaluate_gate(GateType.CONST1, []) is True

    def test_wide_gates(self):
        assert evaluate_gate(GateType.AND, [True, True, True])
        assert not evaluate_gate(GateType.AND, [True, False, True])
        assert evaluate_gate(GateType.XOR, [True, True, True])
        assert not evaluate_gate(GateType.XOR, [True, True])

    def test_cannot_evaluate_input(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [])


class TestGateFunction:
    @pytest.mark.parametrize("gate", BINARY_GATES + [GateType.NOT, GateType.BUF])
    def test_symbolic_matches_concrete(self, gate):
        engine = BddEngine()
        a, b = engine.var("a"), engine.var("b")
        arity = 1 if gate in (GateType.NOT, GateType.BUF) else 2
        f = gate_function(engine, gate, [a, b][:arity])
        for va, vb in itertools.product([False, True], repeat=2):
            env = {"a": va, "b": vb}
            assert engine.evaluate(f, env) == evaluate_gate(
                gate, [va, vb][:arity]
            )


class TestGateSettle:
    @pytest.mark.parametrize("gate", BINARY_GATES)
    def test_settled_inputs_partition(self, gate):
        """With fully settled inputs (S1, S0 = f, ~f) the settle pair is
        exactly (onset, offset) of the gate function."""
        engine = BddEngine()
        a, b = engine.var("a"), engine.var("b")
        pairs = [(a, engine.not_(a)), (b, engine.not_(b))]
        s1, s0 = gate_settle(engine, gate, pairs)
        f = gate_function(engine, gate, [a, b])
        assert engine.equiv(s1, f)
        assert engine.equiv(s0, engine.not_(f))

    def test_controlling_input_settles_alone(self):
        """An AND gate with one input settled to 0 is settled to 0 even if
        the other input is fully unsettled."""
        engine = BddEngine()
        a = engine.var("a")
        settled_zero = (engine.const0, engine.not_(a))
        unsettled = (engine.const0, engine.const0)
        s1, s0 = gate_settle(engine, GateType.AND, [settled_zero, unsettled])
        assert engine.equiv(s0, engine.not_(a))
        assert s1 == engine.const0

    def test_noncontrolled_needs_all_inputs(self):
        engine = BddEngine()
        a = engine.var("a")
        settled_one = (a, engine.const0)
        unsettled = (engine.const0, engine.const0)
        s1, s0 = gate_settle(engine, GateType.AND, [settled_one, unsettled])
        assert s1 == engine.const0
        assert s0 == engine.const0

    def test_xor_needs_all_inputs_even_for_zero(self):
        engine = BddEngine()
        a = engine.var("a")
        settled = (a, engine.not_(a))
        unsettled = (engine.const0, engine.const0)
        s1, s0 = gate_settle(engine, GateType.XOR, [settled, unsettled])
        assert s1 == engine.const0 and s0 == engine.const0

    def test_not_swaps(self):
        engine = BddEngine()
        a = engine.var("a")
        s1, s0 = gate_settle(engine, GateType.NOT, [(a, engine.not_(a))])
        assert engine.equiv(s1, engine.not_(a))
        assert engine.equiv(s0, a)
