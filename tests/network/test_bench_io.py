import pytest

from repro.network import dumps_bench, loads_bench

from tests.helpers import assert_same_function, c17


class TestParsing:
    def test_c17(self):
        c = c17()
        assert len(c.inputs) == 5 and len(c.outputs) == 2

    def test_comments_and_blank_lines(self):
        text = "# hi\n\nINPUT(a)\nOUTPUT(f)\nf = NOT(a)  # trailing\n"
        c = loads_bench(text)
        assert c.evaluate_outputs({"a": False}) == {"f": True}

    def test_forward_references_allowed(self):
        text = "INPUT(a)\nOUTPUT(f)\nf = BUFF(g)\ng = NOT(a)\n"
        c = loads_bench(text)
        assert c.evaluate_outputs({"a": True}) == {"f": False}

    def test_all_gate_types(self):
        text = (
            "INPUT(a)\nINPUT(b)\nOUTPUT(f)\n"
            "g1 = AND(a, b)\ng2 = OR(a, b)\ng3 = XOR(g1, g2)\n"
            "g4 = NOR(g3, a)\ng5 = XNOR(g4, b)\ng6 = INV(g5)\n"
            "f = BUFF(g6)\n"
        )
        c = loads_bench(text)
        assert c.num_gates == 7

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            loads_bench("INPUT(a)\nf = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            loads_bench("INPUT(a)\nwhat is this\n")

    def test_missing_fanin_rejected(self):
        with pytest.raises(ValueError):
            loads_bench("INPUT(a)\nOUTPUT(f)\nf = NOT(ghost)\n")


class TestRoundTrip:
    def test_c17_roundtrip_function(self):
        c = c17()
        again = loads_bench(dumps_bench(c), "c17")
        assert_same_function(c, again)

    def test_roundtrip_preserves_io_order(self):
        c = c17()
        again = loads_bench(dumps_bench(c))
        assert again.inputs == c.inputs
        assert again.outputs == c.outputs

    def test_generated_circuits_roundtrip(self):
        from repro.circuits import carry_skip_adder

        c = carry_skip_adder(8, 4)
        again = loads_bench(dumps_bench(c))
        vec = {name: (i % 3 == 0) for i, name in enumerate(c.inputs)}
        assert again.evaluate_outputs(vec) == c.evaluate_outputs(vec)
