import pytest

from repro.network import render_cone, render_levels

from tests.helpers import c17, tiny_and_or


class TestRenderLevels:
    def test_header_and_levels(self):
        text = render_levels(c17())
        assert "5 inputs, 6 gates, depth 3" in text
        assert "t=0" in text and "t=3" in text

    def test_outputs_marked(self):
        text = render_levels(c17())
        assert "G22*(NAND)" in text

    def test_truncation(self):
        from repro.circuits import parity_tree

        text = render_levels(parity_tree(32), max_nodes_per_level=4)
        assert "more" in text


class TestRenderCone:
    def test_tree_shape(self):
        text = render_cone(tiny_and_or(), "f")
        lines = text.splitlines()
        assert lines[0].startswith("f (OR")
        assert any("g (AND" in line for line in lines)
        assert any("(PI)" in line for line in lines)

    def test_shared_nodes_referenced_once(self):
        text = render_cone(c17(), "G23")
        # G11 feeds both G16 and G19; the second visit is a reference.
        assert text.count("G11 (NAND") == 1
        assert "<G11 ...>" in text

    def test_depth_limit(self):
        text = render_cone(c17(), "G22", max_depth=1)
        assert "..." in text

    def test_unknown_root_rejected(self):
        with pytest.raises(KeyError):
            render_cone(c17(), "nope")


class TestCliShow:
    def test_show_levels(self, tmp_path, capsys):
        from repro.cli import main
        from repro.network import dump_bench

        path = tmp_path / "c.bench"
        dump_bench(c17(), str(path))
        assert main(["show", str(path)]) == 0
        assert "depth 3" in capsys.readouterr().out

    def test_show_cone(self, tmp_path, capsys):
        from repro.cli import main
        from repro.network import dump_bench

        path = tmp_path / "c.bench"
        dump_bench(c17(), str(path))
        assert main(["show", str(path), "--cone", "G22"]) == 0
        assert "G22 (NAND" in capsys.readouterr().out
