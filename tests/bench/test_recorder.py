"""BenchRecorder measurement semantics: repeats, counters, profiling."""

import pytest

from repro.bench.profiling import profile_block
from repro.bench.recorder import BenchRecorder, peak_rss_kb
from repro.runtime import METRICS
from repro.runtime.fingerprint import circuit_fingerprint

from tests.helpers import c17


def test_warmup_runs_are_discarded_and_repeats_recorded():
    calls = []
    recorder = BenchRecorder("demo")
    result = recorder.run("case", lambda: calls.append(1) or len(calls),
                          repeats=3, warmup=2)
    assert len(calls) == 5          # 2 warmup + 3 recorded
    assert result == 5              # last invocation's return value
    (case,) = recorder.record()["cases"]
    assert len(case["samples"]) == 3


def test_counter_deltas_and_checks_rollup():
    METRICS.reset()

    def work():
        METRICS.incr("transition.checks", 7)
        METRICS.incr("floating.checks", 2)
        METRICS.incr("cache.memory_hits", 3)
        METRICS.incr("cache.misses", 1)

    recorder = BenchRecorder("demo")
    recorder.run("case", work)
    (case,) = recorder.record()["cases"]
    assert case["checks"] == 9
    assert case["counters"]["transition.checks"] == 7
    assert case["cache"] == {"hits": 3, "misses": 1, "hit_rate": 0.75}
    assert case["peak_rss_kb"] == pytest.approx(peak_rss_kb(), rel=0.5)


def test_pre_existing_counters_do_not_leak_into_the_case():
    METRICS.reset()
    METRICS.incr("transition.checks", 1000)
    recorder = BenchRecorder("demo")
    recorder.run("case", lambda: METRICS.incr("transition.checks", 5))
    (case,) = recorder.record()["cases"]
    assert case["checks"] == 5


def test_circuit_fingerprint_matches_the_runtime_cache_key():
    circuit = c17()
    recorder = BenchRecorder("demo")
    recorder.run("case", lambda: None, circuit=circuit)
    (case,) = recorder.record()["cases"]
    assert case["fingerprint"] == circuit_fingerprint(circuit)


def test_measure_exposes_elapsed_and_records_one_sample():
    recorder = BenchRecorder("demo")
    with recorder.measure("inline") as measurement:
        total = sum(range(1000))
    assert total == 499500
    assert measurement.elapsed > 0
    (case,) = recorder.record()["cases"]
    assert case["samples"] == [pytest.approx(measurement.elapsed, abs=1e-6)]


def test_failed_measure_block_records_no_sample():
    recorder = BenchRecorder("demo")
    with pytest.raises(RuntimeError):
        with recorder.measure("inline"):
            raise RuntimeError("measured code failed")
    assert recorder._cases["inline"].samples == []


def test_invalid_repeats_rejected():
    with pytest.raises(ValueError):
        BenchRecorder("demo", repeats=0)


def test_cprofile_mode_captures_in_package_frames():
    from repro.core import compute_transition_delay

    circuit = c17()
    with profile_block("cprofile") as frames:
        compute_transition_delay(circuit)
    assert frames, "expected at least one in-package frame"
    assert all(frame["site"].startswith("repro/") for frame in frames)
    assert frames == sorted(
        frames, key=lambda f: (-f["cumulative_ms"], f["site"])
    )
    assert len(frames) <= 10


def test_profile_block_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown profile mode"):
        with profile_block("flamegraph"):
            pass


def test_profile_off_modes_yield_empty_frames():
    for mode in (None, "", "off", "spans"):
        with profile_block(mode) as frames:
            pass
        assert frames == []


def test_profiled_case_lands_in_the_record():
    from repro.core import compute_floating_delay

    circuit = c17()
    recorder = BenchRecorder("demo", profile="cprofile")
    recorder.run("case", lambda: compute_floating_delay(circuit),
                 circuit=circuit)
    (case,) = recorder.record()["cases"]
    assert case.get("profile")
    assert {"site", "calls", "cumulative_ms", "own_ms"} <= set(
        case["profile"][0]
    )
