"""Every migrated benchmark suite must produce a schema-valid record.

The default run drives a fast subset (sub-second suites) end-to-end
through the real runner; ``REPRO_BENCH_SMOKE=1`` widens it to every
suite in ``benchmarks/`` (≈ 1-2 minutes, exercised by the CI
``bench-smoke`` job via ``trued bench run`` instead).
"""

import os

import pytest

from repro.bench import discover_suites, load_record, run_suites

FAST_SUITES = [
    "fig1_floating_vs_transition",
    "fig2_monotone_speedup",
    "fig5_symbolic_formulas",
]

_FULL = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _suites():
    return discover_suites() if _FULL else FAST_SUITES


def test_fast_suites_exist_on_disk():
    available = discover_suites()
    for suite in FAST_SUITES:
        assert suite in available


@pytest.mark.parametrize("suite", _suites())
def test_suite_produces_schema_valid_record(suite, tmp_path):
    records = run_suites([suite], tmp_path, repeats=1, warmup=0, quiet=True)
    # run_suites validates on load; re-load from disk to prove the file
    # round-trips, then sanity-check the measured content.
    record = load_record(tmp_path / f"BENCH_{suite}.json")
    assert record == records[suite]
    assert record["suite"] == suite
    assert record["cases"], "suite recorded no cases"
    for case in record["cases"]:
        assert case["samples"], case["name"]
    summary = load_record(tmp_path / "BENCH_summary.json")
    assert summary["suites"][suite]["cases"] == len(record["cases"])
