"""The subprocess-per-suite runner, driven against a scratch suites dir."""

import pytest

from repro.bench import discover_suites, load_record, run_suites
from repro.bench.runner import DEFAULT_SUITES_DIR, run_suite

_CONFTEST = (DEFAULT_SUITES_DIR / "conftest.py").read_text()

_TINY_SUITE = """\
import time


def test_tiny(benchmark):
    result = benchmark.pedantic(lambda: 6 * 7, rounds=1, iterations=1)
    assert result == 42


def test_inline(benchmark):
    with benchmark.measure("inline_block"):
        time.sleep(0.001)
    benchmark.annotate("inline_block", answer=42)
"""

_FAILING_SUITE = """\
def test_broken(benchmark):
    benchmark.pedantic(lambda: 1, rounds=1, iterations=1)
    assert False, "deliberate failure"
"""


@pytest.fixture
def scratch_suites(tmp_path):
    suites = tmp_path / "suites"
    suites.mkdir()
    (suites / "conftest.py").write_text(_CONFTEST)
    (suites / "test_tiny.py").write_text(_TINY_SUITE)
    return suites


def test_discover_suites_strips_the_module_prefix(scratch_suites):
    assert discover_suites(scratch_suites) == ["tiny"]
    assert "incremental" in discover_suites()  # the real benchmarks/


def test_unknown_suite_reports_the_available_ones(scratch_suites, tmp_path):
    with pytest.raises(ValueError, match="tiny"):
        run_suite("nope", tmp_path / "out", directory=scratch_suites)


def test_run_suites_writes_records_and_summary(scratch_suites, tmp_path):
    out = tmp_path / "out"
    records = run_suites(
        ["tiny"], out, repeats=2, warmup=1,
        directory=scratch_suites, quiet=True,
    )
    record = records["tiny"]
    assert record["suite"] == "tiny"
    assert record["repeats"] == 2 and record["warmup"] == 1
    by_name = {case["name"]: case for case in record["cases"]}
    assert len(by_name["tiny"]["samples"]) == 2      # repeats honoured
    assert by_name["inline_block"]["extra"] == {"answer": 42}
    assert load_record(out / "BENCH_tiny.json") == record
    summary = load_record(out / "BENCH_summary.json")
    assert summary["suites"]["tiny"]["cases"] == 2


def test_failed_suite_publishes_no_record(scratch_suites, tmp_path):
    (scratch_suites / "test_bad.py").write_text(_FAILING_SUITE)
    out = tmp_path / "out"
    with pytest.raises(RuntimeError, match="deliberate failure"):
        run_suite("bad", out, directory=scratch_suites, quiet=True)
    assert not (out / "BENCH_bad.json").exists()


def test_keep_going_writes_partial_summary_then_raises(
        scratch_suites, tmp_path):
    (scratch_suites / "test_bad.py").write_text(_FAILING_SUITE)
    out = tmp_path / "out"
    with pytest.raises(RuntimeError, match="failures"):
        run_suites(["bad", "tiny"], out, directory=scratch_suites,
                   keep_going=True, quiet=True)
    summary = load_record(out / "BENCH_summary.json")
    assert list(summary["suites"]) == ["tiny"]      # survivor recorded
    assert (out / "BENCH_tiny.json").exists()
    assert not (out / "BENCH_bad.json").exists()


def test_stale_record_is_deleted_before_a_failing_rerun(
        scratch_suites, tmp_path):
    out = tmp_path / "out"
    run_suite("tiny", out, directory=scratch_suites, quiet=True)
    assert (out / "BENCH_tiny.json").exists()
    (scratch_suites / "test_tiny.py").write_text(_FAILING_SUITE)
    with pytest.raises(RuntimeError):
        run_suite("tiny", out, directory=scratch_suites, quiet=True)
    assert not (out / "BENCH_tiny.json").exists()   # no stale baseline
