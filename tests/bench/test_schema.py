"""Schema round-trip and validation for the bench record formats."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    load_record,
    validate_record,
    validate_summary,
)
from repro.bench.recorder import BenchRecorder
from repro.bench.runner import summarise
from repro.bench.schema import dump_record, median


def _recorded_suite(repeats=3):
    recorder = BenchRecorder("demo", repeats=repeats)
    recorder.run("tiny", lambda: sum(range(100)))
    recorder.annotate("tiny", answer=4950)
    return recorder.record()


def test_recorder_record_is_schema_valid():
    record = _recorded_suite()
    assert validate_record(record) == []
    assert record["schema"] == SCHEMA_VERSION
    assert record["kind"] == "suite"
    (case,) = record["cases"]
    assert case["name"] == "tiny"
    assert len(case["samples"]) == 3
    assert case["wall_s"] == median(case["samples"])
    assert case["extra"] == {"answer": 4950}


def test_record_round_trips_through_disk(tmp_path):
    record = _recorded_suite()
    path = tmp_path / "BENCH_demo.json"
    dump_record(record, path)
    loaded = load_record(path)
    assert loaded == json.loads(json.dumps(record))


def test_summary_round_trips_through_disk(tmp_path):
    summary = summarise({"demo": _recorded_suite()}, repeats=3, warmup=1)
    assert validate_summary(summary) == []
    path = tmp_path / "BENCH_summary.json"
    dump_record(summary, path)
    loaded = load_record(path)
    assert loaded["kind"] == "summary"
    assert loaded["suites"]["demo"]["cases"] == 1
    assert loaded["suites"]["demo"]["record"] == "BENCH_demo.json"


def test_validate_record_reports_every_problem():
    record = _recorded_suite()
    record["cases"][0].pop("wall_s")
    record["cases"][0]["samples"] = []
    record.pop("suite")
    problems = validate_record(record)
    assert any("wall_s" in p for p in problems)
    assert any("empty samples" in p for p in problems)
    assert any("suite" in p for p in problems)


def test_validate_record_rejects_duplicate_case_names():
    record = _recorded_suite()
    record["cases"] = record["cases"] * 2
    assert any("duplicate" in p for p in validate_record(record))


def test_validate_record_rejects_foreign_schema_version():
    record = _recorded_suite()
    record["schema"] = SCHEMA_VERSION + 1
    assert any("schema version" in p for p in validate_record(record))


def test_load_record_raises_with_all_problems(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"kind": "suite", "cases": [{}]}))
    with pytest.raises(ValueError) as excinfo:
        load_record(path)
    message = str(excinfo.value)
    assert "missing field" in message
    assert "repeats" in message


def test_median_odd_even_and_empty():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5
    with pytest.raises(ValueError):
        median([])
