"""Regression-gate verdicts: tolerance math, case matching, exit policy."""

import pytest

from repro.bench import (
    DEFAULT_TOLERANCES,
    Tolerance,
    compare_results,
    parse_tolerance_spec,
    render_comparison_markdown,
)
from repro.bench.schema import SCHEMA_VERSION


def _case(name, wall_s=0.5, checks=100, peak_rss_kb=50_000):
    return {
        "name": name,
        "wall_s": wall_s,
        "samples": [wall_s],
        "checks": checks,
        "counters": {},
        "cache": {"hits": 0, "misses": 0, "hit_rate": 0.0},
        "peak_rss_kb": peak_rss_kb,
        "spans": [],
    }


def _record(*cases):
    return {
        "schema": SCHEMA_VERSION,
        "kind": "suite",
        "suite": "demo",
        "repeats": 1,
        "warmup": 0,
        "env": {},
        "cases": list(cases),
    }


def test_identical_records_pass_with_exit_zero():
    old = _record(_case("a"), _case("b"))
    report = compare_results(old, _record(_case("a"), _case("b")))
    assert report.exit_code() == 0
    assert [c.verdict for c in report.cases] == ["ok", "ok"]


def test_two_x_slowdown_is_a_regression_with_nonzero_exit():
    old = _record(_case("a", wall_s=1.0))
    new = _record(_case("a", wall_s=2.0))
    report = compare_results(old, new)
    assert report.exit_code() == 1
    (case,) = report.cases
    assert case.verdict == "regression"
    assert case.delta("wall_s").verdict == "regression"
    assert case.delta("checks").verdict == "ok"


def test_small_absolute_wobble_stays_inside_the_noise_band():
    # 3 ms -> 7 ms is > 2x but far under the 50 ms absolute slack.
    old = _record(_case("a", wall_s=0.003))
    new = _record(_case("a", wall_s=0.007))
    assert compare_results(old, new).exit_code() == 0


def test_any_check_count_increase_gates():
    old = _record(_case("a", checks=100))
    new = _record(_case("a", checks=101))
    report = compare_results(old, new)
    assert report.exit_code() == 1
    assert report.cases[0].delta("checks").verdict == "regression"


def test_improvement_is_reported_but_passes():
    old = _record(_case("a", wall_s=2.0))
    new = _record(_case("a", wall_s=0.5))
    report = compare_results(old, new)
    assert report.exit_code() == 0
    assert report.cases[0].verdict == "improved"


def test_new_case_is_informational():
    report = compare_results(
        _record(_case("a")), _record(_case("a"), _case("b"))
    )
    assert report.exit_code() == 0
    verdicts = {c.name: c.verdict for c in report.cases}
    assert verdicts["demo/b"] == "new"


def test_missing_case_fails_the_gate():
    report = compare_results(
        _record(_case("a"), _case("b")), _record(_case("a"))
    )
    assert report.exit_code() == 1
    verdicts = {c.name: c.verdict for c in report.cases}
    assert verdicts["demo/b"] == "missing"


def test_tolerance_override_loosens_the_gate():
    old = _record(_case("a", wall_s=1.0))
    new = _record(_case("a", wall_s=2.0))
    loose = {"wall_s": Tolerance(ratio=3.0)}
    assert compare_results(old, new, tolerances=loose).exit_code() == 0


def test_summary_documents_compare_by_suite_name():
    old = {
        "schema": SCHEMA_VERSION, "kind": "summary", "repeats": 1,
        "warmup": 0,
        "suites": {"s1": {"cases": 2, "wall_s": 1.0, "checks": 10,
                          "peak_rss_kb": 1000, "record": "BENCH_s1.json"}},
    }
    import copy
    new = copy.deepcopy(old)
    new["suites"]["s1"]["wall_s"] = 5.0
    report = compare_results(old, new)
    assert report.kind == "summary"
    assert report.cases[0].name == "s1"
    assert report.exit_code() == 1


def test_schema_version_mismatch_refuses_to_gate():
    old = _record(_case("a"))
    new = _record(_case("a"))
    new["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        compare_results(old, new)


def test_kind_mismatch_refuses_to_gate():
    summary = {"schema": SCHEMA_VERSION, "kind": "summary", "repeats": 1,
               "warmup": 0, "suites": {}}
    with pytest.raises(ValueError, match="cannot compare"):
        compare_results(_record(_case("a")), summary)


def test_parse_tolerance_spec():
    metric, tolerance = parse_tolerance_spec("wall_s=2.0:0.1")
    assert metric == "wall_s"
    assert tolerance == Tolerance(ratio=2.0, absolute=0.1)
    metric, tolerance = parse_tolerance_spec("checks=1.5")
    assert tolerance == Tolerance(ratio=1.5, absolute=0.0)
    with pytest.raises(ValueError, match="malformed"):
        parse_tolerance_spec("wall_s")
    with pytest.raises(ValueError, match="unknown metric"):
        parse_tolerance_spec("throughput=2.0")


def test_default_tolerances_cover_all_gated_metrics():
    assert set(DEFAULT_TOLERANCES) == {"wall_s", "checks", "peak_rss_kb"}


def test_markdown_rendering_carries_the_verdict():
    old = _record(_case("a", wall_s=1.0))
    new = _record(_case("a", wall_s=2.0))
    text = render_comparison_markdown(compare_results(old, new))
    assert "FAIL" in text
    assert "REGRESSION" in text
    ok = render_comparison_markdown(compare_results(old, old))
    assert "PASS" in ok
