"""The shared JSON-lines framing layer (`repro.serve.framing`).

Three subsystems sit on this one module — the query service, the
multi-client server, and the distributed shard workers — so these tests
pin the contracts all of them inherit: line iteration with the EOF
final-line rule, the framed-read error taxonomy, the endpoint grammar
of docs/DISTRIBUTED.md §4 and §6, and the unix-socket
probe/refuse/unlink lifecycle that `trued worker --socket` gained by
the hoist (docs/DISTRIBUTED.md §6).
"""

import io
import json
import socket
import threading

import pytest

from repro.serve.framing import (
    MAX_LINE_BYTES,
    ProtocolError,
    bound_unix_socket,
    connect_endpoint,
    format_endpoint,
    iter_request_lines,
    parse_endpoint,
    prepare_unix_socket_path,
    read_json_line,
    send_json_line,
)


# ----------------------------------------------------------------------
# iter_request_lines
# ----------------------------------------------------------------------
def test_final_unterminated_line_is_still_a_request():
    reader = io.StringIO('{"op": "a"}\n{"op": "b"}')
    assert list(iter_request_lines(reader)) == [
        '{"op": "a"}\n',
        '{"op": "b"}',
    ]


def test_plain_iterables_pass_through():
    lines = ['{"op": "a"}\n', '{"op": "b"}\n']
    assert list(iter_request_lines(iter(lines))) == lines


# ----------------------------------------------------------------------
# send_json_line / read_json_line
# ----------------------------------------------------------------------
def test_round_trip_is_one_sorted_line():
    out = io.StringIO()
    send_json_line(out, {"b": 2, "a": 1})
    text = out.getvalue()
    assert text == '{"a": 1, "b": 2}\n'
    assert read_json_line(io.StringIO(text)) == {"a": 1, "b": 2}


def test_read_json_line_eof_and_blank():
    assert read_json_line(io.StringIO("")) is None
    assert read_json_line(io.StringIO("\n")) == {}
    assert read_json_line(io.StringIO("   \n")) == {}


def test_read_json_line_rejects_non_object():
    with pytest.raises(ProtocolError, match="JSON object"):
        read_json_line(io.StringIO("[1, 2]\n"))


def test_read_json_line_rejects_garbage():
    with pytest.raises(ProtocolError, match="invalid JSON"):
        read_json_line(io.StringIO("{nope\n"))


def test_read_json_line_caps_unterminated_floods():
    flood = "x" * (MAX_LINE_BYTES + 10)
    with pytest.raises(ProtocolError, match="framing limit"):
        read_json_line(io.StringIO(flood))


def test_read_json_line_accepts_a_large_terminated_line():
    big = json.dumps({"blob": "y" * 100_000}) + "\n"
    assert read_json_line(io.StringIO(big)) == {"blob": "y" * 100_000}


# ----------------------------------------------------------------------
# Endpoint grammar (docs/DISTRIBUTED.md §6: --tcp/--socket, --hosts)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec,expected",
    [
        ("127.0.0.1:9101", ("tcp", "127.0.0.1", 9101)),
        ("tcp://10.0.0.7:80", ("tcp", "10.0.0.7", 80)),
        (":9101", ("tcp", "127.0.0.1", 9101)),
        ("unix:///tmp/w.sock", ("unix", "/tmp/w.sock")),
        ("/tmp/w.sock", ("unix", "/tmp/w.sock")),
        ("worker.sock", ("unix", "worker.sock")),
        ("  127.0.0.1:9101  ", ("tcp", "127.0.0.1", 9101)),
    ],
)
def test_parse_endpoint_grammar(spec, expected):
    assert parse_endpoint(spec) == expected


@pytest.mark.parametrize("spec", ["", "   ", "nonsense", "host:port"])
def test_parse_endpoint_rejects_garbage(spec):
    with pytest.raises(ProtocolError):
        parse_endpoint(spec)


def test_format_endpoint_round_trips():
    for spec in ("tcp://127.0.0.1:9101", "unix:///tmp/w.sock"):
        assert format_endpoint(parse_endpoint(spec)) == spec


# ----------------------------------------------------------------------
# Unix socket lifecycle (probe / refuse / unlink-on-exit)
# ----------------------------------------------------------------------
def test_stale_socket_file_is_unlinked(tmp_path):
    path = str(tmp_path / "stale.sock")
    corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    corpse.bind(path)
    corpse.close()  # bound but never listening -> probe is refused
    prepare_unix_socket_path(path)
    import os

    assert not os.path.exists(path)


def test_live_listener_refuses_takeover(tmp_path):
    path = str(tmp_path / "live.sock")
    with bound_unix_socket(path) as server:
        assert server.getsockname() == path
        with pytest.raises(ProtocolError, match="listening"):
            prepare_unix_socket_path(path)
        with pytest.raises(ProtocolError, match="listening"):
            with bound_unix_socket(path):
                pass  # pragma: no cover - refused before the yield


def test_bound_unix_socket_unlinks_on_every_exit_path(tmp_path):
    import os

    path = str(tmp_path / "w.sock")
    with bound_unix_socket(path):
        assert os.path.exists(path)
    assert not os.path.exists(path)

    with pytest.raises(RuntimeError, match="boom"):
        with bound_unix_socket(path):
            raise RuntimeError("boom")
    assert not os.path.exists(path)

    # A fresh bind works after both exits (no stale registration).
    with bound_unix_socket(path):
        assert os.path.exists(path)


def test_bound_unix_socket_accepts_connections(tmp_path):
    path = str(tmp_path / "echo.sock")
    replies = []

    def serve():
        with bound_unix_socket(path) as server:
            conn, _ = server.accept()
            with conn, conn.makefile("r") as r, conn.makefile("w") as w:
                request = read_json_line(r)
                send_json_line(w, {"ok": True, "echo": request})

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        for _ in range(200):
            try:
                sock = connect_endpoint(("unix", path), timeout=1.0)
                break
            except (ConnectionRefusedError, FileNotFoundError):
                import time

                time.sleep(0.01)
        with sock, sock.makefile("r") as r, sock.makefile("w") as w:
            send_json_line(w, {"op": "ping"})
            replies.append(read_json_line(r))
    finally:
        thread.join(timeout=5)
    assert replies == [{"ok": True, "echo": {"op": "ping"}}]


def test_service_error_is_the_shared_protocol_error():
    """The query service's ServiceError and the framing ProtocolError
    are one exception type — a hoisted raise is still caught by old
    handlers on both sides."""
    from repro.incremental.service import ServiceError

    assert ServiceError is ProtocolError
