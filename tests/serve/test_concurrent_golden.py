"""Concurrent sessions are byte-identical to single-client runs.

Two scripted clients with *different* circuits run interleaved against
one server (sharing its pool and cache); each session's responses must
equal — ids, records, certification vectors, stats — the golden stream
the same script produces on the single-client stdio transport.
"""

import asyncio
import io
import json
import sys
from pathlib import Path

import pytest

from repro.incremental import QueryService, WarmPool, serve_stream
from repro.runtime.metrics import metrics_scope
from repro.runtime.tracing import tracer_scope
from repro.serve import TimingServer

from tests.helpers import C17_BENCH

SERVICE_DIR = Path(__file__).resolve().parents[1] / "service"
sys.path.insert(0, str(SERVICE_DIR))
from normalize import normalize_line  # noqa: E402


class Rendezvous:
    """Two-party reusable barrier (asyncio.Barrier needs Python 3.11)."""

    def __init__(self, parties: int) -> None:
        self._parties = parties
        self._waiting = 0
        self._event = asyncio.Event()

    async def wait(self) -> None:
        self._waiting += 1
        if self._waiting >= self._parties:
            self._waiting = 0
            event, self._event = self._event, asyncio.Event()
            event.set()
        else:
            await self._event.wait()

ALT_BENCH = """
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(D)
OUTPUT(Y)
OUTPUT(Z)
N1 = AND(A, B)
N2 = OR(C, D)
N3 = XOR(N1, N2)
Y = NAND(N3, B)
Z = NOR(N2, A)
"""

SCRIPT_A = [
    {"op": "load", "bench": C17_BENCH},
    {"op": "query", "kind": "topological"},
    {"op": "query", "kind": "transition"},
    {"op": "edit", "edits": [
        {"op": "set_delay", "name": "G10", "delay": 3}]},
    {"op": "query", "kind": "transition"},
    {"op": "certify"},
]

SCRIPT_B = [
    {"op": "load", "bench": ALT_BENCH},
    {"op": "query", "kind": "floating"},
    {"op": "query", "kind": "transition"},
    {"op": "edit", "edits": [
        {"op": "set_delay", "name": "N2", "delay": 2}]},
    {"op": "query", "kind": "transition"},
    {"op": "certify"},
]


def golden_run(script, jobs):
    """The single-client reference: same script through serve_stream,
    under a throwaway observability scope (exactly what each server
    session gets)."""
    with metrics_scope(), tracer_scope():
        if jobs == 1:
            service = QueryService(jobs=1)
            pool = None
        else:
            pool = WarmPool(jobs=jobs, timeout=60)
            service = QueryService(jobs=jobs, pool=pool)
        writer = io.StringIO()
        try:
            serve_stream(
                service, iter([json.dumps(r) for r in script]), writer
            )
        finally:
            if pool is not None:
                pool.shutdown()
    return [
        normalize_line(line, strip_stats=False)
        for line in writer.getvalue().splitlines()
    ]


async def scripted_client(host, port, script, barrier):
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for request in script:
            # Interleave deterministically-ish: both clients rendezvous
            # before every request, so the sessions genuinely overlap.
            await barrier.wait()
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            while True:
                response = json.loads(await reader.readline())
                if response.get("busy"):
                    await asyncio.sleep(0.002)
                    writer.write((json.dumps(request) + "\n").encode())
                    await writer.drain()
                    continue
                break
            responses.append(response)
    finally:
        writer.close()
    return responses


async def run_concurrent(jobs):
    server = TimingServer(jobs=jobs, timeout=60 if jobs != 1 else None)
    await server.start(host="127.0.0.1", port=0)
    try:
        host, port = server.tcp_address
        barrier = Rendezvous(2)
        results = await asyncio.gather(
            scripted_client(host, port, SCRIPT_A, barrier),
            scripted_client(host, port, SCRIPT_B, barrier),
        )
    finally:
        await server.stop()
    return [
        [
            normalize_line(json.dumps(response), strip_stats=False)
            for response in session
        ]
        for session in results
    ]


@pytest.mark.parametrize("jobs", [1, 4])
def test_interleaved_sessions_match_single_client_goldens(jobs):
    golden_a = golden_run(SCRIPT_A, jobs)
    golden_b = golden_run(SCRIPT_B, jobs)
    # Different circuits => the scripts answer differently; a match
    # against the wrong golden would be vacuous otherwise.
    assert golden_a != golden_b
    session_a, session_b = asyncio.run(run_concurrent(jobs))
    assert session_a == golden_a
    assert session_b == golden_b
