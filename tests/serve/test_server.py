"""The multi-client asyncio server: protocol, admission, coalescing."""

import asyncio
import json
import socket
import threading

import pytest

from repro.incremental.service import QueryService
from repro.runtime.metrics import GLOBAL_METRICS
from repro.serve import TimingServer, default_script, run_loadgen
from repro.serve.loadgen import percentile

from tests.helpers import C17_BENCH


async def _request(reader, writer, payload) -> dict:
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Protocol basics over real TCP
# ----------------------------------------------------------------------
def test_tcp_roundtrip_load_query_stats():
    async def scenario():
        server = TimingServer()
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            reader, writer = await asyncio.open_connection(host, port)
            loaded = await _request(
                reader, writer, {"op": "load", "bench": C17_BENCH}
            )
            queried = await _request(
                reader, writer, {"op": "query", "kind": "transition"}
            )
            stats = await _request(reader, writer, {"op": "stats"})
            writer.close()
            return loaded, queried, stats
        finally:
            await server.stop()

    loaded, queried, stats = run(scenario())
    assert loaded["ok"] and loaded["id"] == "req-000001"
    assert queried["result"]["record"]["delay"] == 3
    # The session's protocol stats are its own, not the process's.
    assert stats["result"]["requests"] == 3
    assert stats["result"]["reloads"] == 0


def test_final_line_without_newline_is_serviced():
    """Regression: a client that omits the trailing newline on its last
    request (then half-closes) must still get that request's answer."""

    async def scenario():
        server = TimingServer()
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((json.dumps(
                {"op": "load", "bench": C17_BENCH}) + "\n").encode())
            # Last request: NO trailing newline, then EOF.
            writer.write(json.dumps(
                {"op": "query", "kind": "transition"}).encode())
            writer.write_eof()
            await writer.drain()
            responses = []
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                responses.append(json.loads(raw))
            writer.close()
            return responses
        finally:
            await server.stop()

    responses = run(scenario())
    assert len(responses) == 2
    assert responses[1]["ok"]
    assert responses[1]["result"]["record"]["delay"] == 3


def test_shutdown_op_stops_the_whole_server():
    async def scenario():
        server = TimingServer()
        await server.start(host="127.0.0.1", port=0)
        host, port = server.tcp_address
        reader, writer = await asyncio.open_connection(host, port)
        response = await _request(reader, writer, {"op": "shutdown"})
        writer.close()
        await asyncio.wait_for(server.serve_forever(), timeout=30)
        return response

    response = run(scenario())
    assert response["result"] == {"stopping": True}


# ----------------------------------------------------------------------
# Admission control: bounded queue, explicit busy
# ----------------------------------------------------------------------
def test_busy_backpressure_consumes_no_request_id(monkeypatch):
    """With max_pending=1 and the single worker blocked, a second
    session's compute request is shed with ``busy`` — and because no id
    was consumed, the retry after release gets the next sequential id."""
    hold = threading.Event()
    release = threading.Event()
    original = QueryService.handle_line

    def gated(self, line, trace_id=None):
        if '"transition"' in line:
            hold.set()
            release.wait(timeout=60)
        return original(self, line, trace_id)

    monkeypatch.setattr(QueryService, "handle_line", gated)

    async def scenario():
        server = TimingServer(max_pending=1, workers=1)
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            r1, w1 = await asyncio.open_connection(host, port)
            r2, w2 = await asyncio.open_connection(host, port)
            await _request(r1, w1, {"op": "load", "bench": C17_BENCH})
            # Occupy the only slot (blocks inside the worker thread).
            blocked = asyncio.create_task(
                _request(r1, w1, {"op": "query", "kind": "transition"})
            )
            await asyncio.get_running_loop().run_in_executor(
                None, hold.wait, 60
            )
            busy = await _request(
                r2, w2, {"op": "load", "bench": C17_BENCH}
            )
            release.set()
            await blocked
            retried = await _request(
                r2, w2, {"op": "load", "bench": C17_BENCH}
            )
            stats = await _request(r2, w2, {"op": "server_stats"})
            w1.close(), w2.close()
            return busy, retried, stats
        finally:
            release.set()
            await server.stop()

    busy, retried, stats = run(scenario())
    assert busy == {
        "id": None, "ok": False, "busy": True, "error": "busy",
        "pending": 1, "max_pending": 1, "elapsed_ms": 0.0,
    }
    assert retried["ok"] and retried["id"] == "req-000001"
    assert stats["result"]["busy_rejections"] == 1


# ----------------------------------------------------------------------
# Cross-client coalescing
# ----------------------------------------------------------------------
def test_identical_inflight_queries_coalesce(monkeypatch):
    """Two sessions with the same circuit issue the same query while the
    leader is still computing: exactly one computation runs; the waiter
    adopts its record (marked ``coalesced`` in volatile stats only)."""
    dispatched = []
    hold = threading.Event()
    release = threading.Event()
    original = QueryService.handle_line

    def gated(self, line, trace_id=None):
        if '"transition"' in line:
            dispatched.append(trace_id)
            hold.set()
            release.wait(timeout=60)
        return original(self, line, trace_id)

    monkeypatch.setattr(QueryService, "handle_line", gated)

    async def scenario():
        server = TimingServer(workers=1)
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            r1, w1 = await asyncio.open_connection(host, port)
            r2, w2 = await asyncio.open_connection(host, port)
            await _request(r1, w1, {"op": "load", "bench": C17_BENCH})
            await _request(r2, w2, {"op": "load", "bench": C17_BENCH})
            leader = asyncio.create_task(
                _request(r1, w1, {"op": "query", "kind": "transition"})
            )
            await asyncio.get_running_loop().run_in_executor(
                None, hold.wait, 60
            )
            waiter = asyncio.create_task(
                _request(r2, w2, {"op": "query", "kind": "transition"})
            )
            # The waiter must be registered before the leader resolves.
            while server.stats()["coalesce_hits"] == 0:
                await asyncio.sleep(0.005)
            release.set()
            first, second = await asyncio.gather(leader, waiter)
            stats = await _request(r1, w1, {"op": "server_stats"})
            w1.close(), w2.close()
            return first, second, stats
        finally:
            release.set()
            await server.stop()

    first, second, stats = run(scenario())
    assert len(dispatched) == 1  # one computation, two answers
    assert first["result"]["record"] == second["result"]["record"]
    # Per-session ids: each session allocated its own second id.
    assert first["id"] == second["id"] == "req-000002"
    assert second["result"]["stats"]["coalesced"] == 1
    assert "coalesced" not in first["result"]["stats"]
    assert stats["result"]["coalesce_hits"] == 1
    assert stats["result"]["coalesce_leaders"] == 1


def test_completed_queries_do_not_coalesce_later_ones():
    """Coalescing is strictly in-flight dedup: a query arriving after
    the identical one completed starts a fresh computation (which may
    hit the cone cache, but never adopts a stale response)."""

    async def scenario():
        server = TimingServer()
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            reader, writer = await asyncio.open_connection(host, port)
            await _request(reader, writer, {"op": "load", "bench": C17_BENCH})
            one = await _request(
                reader, writer, {"op": "query", "kind": "transition"}
            )
            two = await _request(
                reader, writer, {"op": "query", "kind": "transition"}
            )
            writer.close()
            return one, two, server.stats()
        finally:
            await server.stop()

    one, two, stats = run(scenario())
    assert one["result"]["record"] == two["result"]["record"]
    assert stats["coalesce_hits"] == 0
    assert stats["coalesce_in_flight"] == 0


# ----------------------------------------------------------------------
# Session-scoped observability
# ----------------------------------------------------------------------
def test_sessions_do_not_touch_global_metrics():
    """Engine counters recorded during server requests land in the
    session's Metrics, never in the process-global singleton."""
    before = GLOBAL_METRICS.counter("incremental.cone_checks")

    async def scenario():
        server = TimingServer()
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            reader, writer = await asyncio.open_connection(host, port)
            await _request(reader, writer, {"op": "load", "bench": C17_BENCH})
            await _request(
                reader, writer, {"op": "query", "kind": "transition"}
            )
            stats = await _request(reader, writer, {"op": "stats"})
            writer.close()
            return stats
        finally:
            await server.stop()

    stats = run(scenario())
    # The session saw its own engine activity...
    assert stats["result"]["counters"]["incremental.cone_checks"] > 0
    # ...and the global singleton saw none of it.
    assert GLOBAL_METRICS.counter("incremental.cone_checks") == before


def test_sessions_share_the_delay_cache():
    """Cone results are content-addressed, so a second session loading
    the same circuit serves its queries from the shared cache."""

    async def scenario():
        server = TimingServer()
        await server.start(host="127.0.0.1", port=0)
        try:
            host, port = server.tcp_address
            r1, w1 = await asyncio.open_connection(host, port)
            await _request(r1, w1, {"op": "load", "bench": C17_BENCH})
            await _request(r1, w1, {"op": "query", "kind": "transition"})
            w1.close()
            r2, w2 = await asyncio.open_connection(host, port)
            await _request(r2, w2, {"op": "load", "bench": C17_BENCH})
            warmed = await _request(
                r2, w2, {"op": "query", "kind": "transition"}
            )
            w2.close()
            return warmed
        finally:
            await server.stop()

    warmed = run(scenario())
    assert warmed["result"]["stats"]["cone_cache_hits"] == 2
    assert warmed["result"]["stats"]["checks"] == 0


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
def test_loadgen_self_hosted_coalesces_and_is_deterministic():
    report = run_loadgen(
        default_script(C17_BENCH, queries=4),
        clients=3,
        server=TimingServer(),
    )
    assert report.clients == 3
    assert report.requests == 15 and report.errors == 0
    assert report.coalesce_hits > 0
    # Determinism across concurrent sessions: identical scripts produce
    # identical per-session responses (ids, records — everything but the
    # wall-clock and coalescing-accounting fields).
    def normalised(session):
        out = []
        for response in session:
            response = json.loads(json.dumps(response))
            response.pop("elapsed_ms", None)
            result = response.get("result")
            if isinstance(result, dict):
                result.pop("stats", None)
            out.append(response)
        return out

    reference = normalised(report.responses[0])
    for session in report.responses[1:]:
        assert normalised(session) == reference


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 50) == 3.0
    assert percentile(values, 99) == 5.0
    assert percentile([], 50) == 0.0
    assert percentile([7.5], 99) == 7.5


# ----------------------------------------------------------------------
# Unix socket front-end
# ----------------------------------------------------------------------
def test_async_unix_socket_and_stale_file_recovery(tmp_path):
    path = str(tmp_path / "serve.sock")
    # A stale socket file from a hard-killed predecessor must not block
    # the bind: the connect probe detects nothing is listening.
    stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stale.bind(path)
    stale.close()  # closed without unlink -> stale file left behind

    async def scenario():
        server = TimingServer()
        await server.start(unix_path=path)
        try:
            reader, writer = await asyncio.open_unix_connection(path)
            await _request(reader, writer, {"op": "load", "bench": C17_BENCH})
            response = await _request(
                reader, writer, {"op": "query", "kind": "transition"}
            )
            writer.close()
            return response
        finally:
            await server.stop()

    response = run(scenario())
    assert response["result"]["record"]["delay"] == 3
    import os

    assert not os.path.exists(path)  # stop() unlinked the socket


def test_live_unix_socket_refuses_second_server(tmp_path):
    path = str(tmp_path / "serve.sock")

    async def scenario():
        first = TimingServer()
        await first.start(unix_path=path)
        try:
            second = TimingServer()
            with pytest.raises(Exception) as excinfo:
                await second.start(unix_path=path)
            return str(excinfo.value)
        finally:
            await first.stop()

    message = run(scenario())
    assert "listening" in message
