"""Runner + collate: measured values, determinism, and caching."""

import json

import pytest

from repro.characterize import (
    normalized,
    parse_spec,
    plan_jobs,
    run_plan,
    run_spec,
    validate_datasheet,
)
from repro.characterize.runner import execute_payload
from repro.runtime.cache import DelayCache


def small_document():
    return {
        "spec": {"id": "rt", "circuits": ["fig1", "fig5"]},
        "corners": {
            "fixed": {"kind": "fixed"},
            "skewed": {"kind": "clocked", "skew": 1},
            "speedup": {"kind": "bounded"},
            "mc": {"kind": "statistical", "samples": 12, "seed": 7},
        },
        "parameter": [
            {"id": "tau", "kind": "clock_period", "max": 5},
            {"id": "fs", "kind": "floating_slack", "min": 0},
            {"id": "ts", "kind": "transition_slack", "min": 0},
            {"id": "tau-skew", "kind": "clock_period", "max": 6,
             "corner": "skewed"},
            {"id": "bd", "kind": "bounded_delay", "max": 5},
            {"id": "cov", "kind": "fault_coverage", "min": 0.5,
             "paths": 2},
            {"id": "y", "kind": "yield", "min": 0.1},
        ],
    }


def canonical(document):
    return json.dumps(normalized(document), sort_keys=True)


class TestExecutePayload:
    def test_certify_result_shape(self):
        result = execute_payload({
            "circuit": "fig1", "analysis": "certify",
            "engine": "auto", "options": {},
        })
        assert result["topological"] == 5
        assert result["floating"] == 5
        assert result["transition"] == 5
        assert result["min_period"] == 5
        assert result["verdict"] == "CERTIFIED"
        assert result["checks"] > 0

    def test_monte_carlo_no_activity_circuit_is_graceful(self):
        # fig2's output never transitions: no pairs, empty samples, and a
        # note — not an exception.
        result = execute_payload({
            "circuit": "fig2", "analysis": "monte_carlo",
            "engine": "auto",
            "options": {"model": "uniform", "spread": 1,
                        "samples": 4, "seed": 1},
        })
        assert result["pairs_used"] == 0
        assert result["samples"] == []
        assert "no certification pairs" in result["note"]

    def test_unknown_analysis_raises(self):
        with pytest.raises(ValueError, match="unknown characterize"):
            execute_payload({
                "circuit": "fig1", "analysis": "wavelet",
                "engine": "auto", "options": {},
            })


class TestRunSpec:
    def test_datasheet_validates_and_passes(self):
        document = run_spec(parse_spec(small_document()))
        assert validate_datasheet(document) == []
        assert document["verdict"] == "PASS"
        by_id = {p["id"]: p for p in document["parameters"]}
        assert by_id["tau"]["rows"][0]["measured"] == 5
        assert by_id["fs"]["rows"][0]["measured"] == 0
        # Yield rows carry the gamma..delta curve of Sec. VII.
        yrow = by_id["y"]["rows"][0]
        assert yrow["gamma"] <= yrow["delta"]
        assert yrow["curve"][0][0] == yrow["gamma"]
        assert yrow["curve"][-1][0] == yrow["delta"]

    def test_failing_target_fails_datasheet(self):
        document = small_document()
        document["parameter"] = [
            {"id": "tau", "kind": "clock_period", "max": 1},
        ]
        sheet = run_spec(parse_spec(document))
        assert sheet["verdict"] == "FAIL"
        assert sheet["parameters"][0]["pass"] is False
        assert sheet["counters"]["parameters_passed"] == 0

    def test_jobs_invariance(self):
        spec = parse_spec(small_document())
        serial = run_spec(spec, jobs=1)
        sharded = run_spec(spec, jobs=3)
        assert canonical(serial) == canonical(sharded)

    def test_warm_cache_reproduces_and_hits(self):
        spec = parse_spec(small_document())
        cache = DelayCache(enabled=True)
        cold = run_spec(spec, jobs=1, cache=cache)
        warm = run_spec(spec, jobs=4, cache=cache)
        assert canonical(cold) == canonical(warm)
        assert cold["provenance"]["cache"]["job_hits"] == 0
        assert warm["provenance"]["cache"]["job_hits"] == len(
            cold["jobs"]
        )
        assert warm["provenance"]["cache"]["hits"] > 0
        assert warm["provenance"]["cache"]["misses"] == 0

    def test_provenance_is_the_only_nondeterminism(self):
        spec = parse_spec(small_document())
        document = run_spec(spec)
        assert "provenance" in document
        stripped = normalized(document)
        assert "provenance" not in stripped
        # normalized() must not mutate its input.
        assert "provenance" in document


class TestRunPlan:
    def test_results_keyed_by_job_id(self):
        spec = parse_spec(small_document())
        plan = plan_jobs(spec)
        results = run_plan(spec, plan)
        assert set(results) == {job.job_id for job in plan}

    def test_cache_serves_subset_reruns(self):
        # A second spec sharing circuits + corners reuses cached jobs even
        # though its parameter set differs: keys are content-addressed.
        cache = DelayCache(enabled=True)
        spec = parse_spec(small_document())
        run_plan(spec, plan_jobs(spec), cache=cache)
        document = small_document()
        document["spec"]["id"] = "rt2"
        document["parameter"] = [
            {"id": "tau", "kind": "clock_period", "max": 5},
        ]
        spec2 = parse_spec(document)
        plan2 = plan_jobs(spec2)
        from repro.runtime.metrics import METRICS

        before = METRICS.counter("characterize.job_cache_hits")
        run_plan(spec2, plan2, cache=cache)
        assert METRICS.counter(
            "characterize.job_cache_hits"
        ) - before == len(plan2)
