"""Plan expansion: dedup, determinism, and job identity."""

from repro.characterize import parse_spec, plan_jobs


def spec_document():
    return {
        "spec": {"id": "p", "circuits": ["fig1", "fig5"]},
        "corners": {
            "fixed": {"kind": "fixed"},
            "skewed": {"kind": "clocked", "skew": 2},
            "speedup": {"kind": "bounded"},
            "mc": {"kind": "statistical", "samples": 4},
        },
        "parameter": [
            {"id": "tau", "kind": "clock_period", "max": 20},
            {"id": "fs", "kind": "floating_slack", "min": 0},
            {"id": "tau-skew", "kind": "clock_period", "max": 20,
             "corner": "skewed"},
            {"id": "bd", "kind": "bounded_delay", "max": 20},
            {"id": "cov", "kind": "fault_coverage", "min": 0.5,
             "paths": 2},
            {"id": "y", "kind": "yield", "min": 0.5},
        ],
    }


def test_plan_dedups_shared_measurements():
    spec = parse_spec(spec_document())
    plan = plan_jobs(spec)
    ids = [job.job_id for job in plan]
    assert len(ids) == len(set(ids))
    # tau, fs, and y's baseline all need the same fixed certify job.
    assert ids.count("fig1/fixed/certify") == 1
    assert set(ids) == {
        "fig1/fixed/certify", "fig1/fixed/faults-k2-robust",
        "fig1/skewed/clocked", "fig1/speedup/bounded",
        "fig1/mc/monte_carlo",
        "fig5/fixed/certify", "fig5/fixed/faults-k2-robust",
        "fig5/skewed/clocked", "fig5/speedup/bounded",
        "fig5/mc/monte_carlo",
    }


def test_plan_order_is_deterministic():
    spec = parse_spec(spec_document())
    assert plan_jobs(spec) == plan_jobs(parse_spec(spec_document()))
    plan = plan_jobs(spec)
    # Circuits in spec order, corners in declaration order within.
    circuits = [job.circuit for job in plan]
    assert circuits == sorted(circuits, key=["fig1", "fig5"].index)


def test_jobs_carry_corner_options():
    spec = parse_spec(spec_document())
    by_id = {job.job_id: job for job in plan_jobs(spec)}
    assert by_id["fig1/skewed/clocked"].option_dict == {"skew": 2}
    mc = by_id["fig1/mc/monte_carlo"].option_dict
    assert mc["samples"] == 4 and mc["model"] == "uniform"
    faults = by_id["fig1/fixed/faults-k2-robust"].option_dict
    assert faults == {"paths": 2, "strength": "robust"}
    assert by_id["fig1/fixed/certify"].option_dict == {}


def test_parameter_subset_limits_jobs():
    document = spec_document()
    document["parameter"] = [
        {"id": "cov", "kind": "fault_coverage", "min": 0.5, "paths": 2,
         "circuits": ["fig5"]},
    ]
    spec = parse_spec(document)
    assert [job.job_id for job in plan_jobs(spec)] == [
        "fig5/fixed/faults-k2-robust"
    ]
