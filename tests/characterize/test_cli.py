"""``trued characterize run/report`` end to end."""

import json

import pytest

from repro.characterize import load_datasheet, normalized
from repro.cli import main


@pytest.fixture(autouse=True)
def restore_global_cache():
    # `main()` runs in-process here, and `--cache` configures the
    # process-global DelayCache; put it back so later test modules keep
    # seeing the disabled default.
    import repro.runtime.cache as cache_mod

    saved = cache_mod._GLOBAL
    yield
    cache_mod._GLOBAL = saved


def spec_document(**overrides):
    document = {
        "spec": {"id": "cli", "circuits": ["fig1", "fig5"]},
        "corners": {
            "fixed": {"kind": "fixed"},
            "mc": {"kind": "statistical", "samples": 4, "seed": 7},
        },
        "parameter": [
            {"id": "tau", "kind": "clock_period", "max": 6},
            {"id": "y", "kind": "yield", "min": 0.1},
        ],
    }
    document.update(overrides)
    return document


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "cli.json"
    path.write_text(json.dumps(spec_document()))
    return str(path)


class TestRun:
    def test_run_emits_datasheet_and_markdown(self, spec_file, tmp_path,
                                              capsys):
        out = tmp_path / "out"
        assert main([
            "characterize", "run", spec_file, "-o", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "PASS (2/2 parameters" in stdout
        document = load_datasheet(out / "DATASHEET_cli.json")
        assert document["verdict"] == "PASS"
        markdown = (out / "DATASHEET_cli.md").read_text()
        assert "**Verdict: PASS**" in markdown
        assert "| `tau` |" in markdown and "| `y` |" in markdown

    def test_failing_spec_exits_one(self, tmp_path, capsys):
        document = spec_document()
        document["parameter"] = [
            {"id": "tau", "kind": "clock_period", "max": 1},
        ]
        path = tmp_path / "fail.json"
        path.write_text(json.dumps(document))
        assert main([
            "characterize", "run", str(path), "-o", str(tmp_path),
        ]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bad_spec_exits_two_naming_key(self, tmp_path, capsys):
        document = spec_document()
        document["spec"]["circuits"] = ["nonesuch"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        assert main([
            "characterize", "run", str(path), "-o", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "bad.json" in err and "nonesuch" in err

    def test_jobs_and_warm_cache_reproduce(self, spec_file, tmp_path,
                                           capsys):
        cache = tmp_path / "cache"
        out1, out2 = tmp_path / "o1", tmp_path / "o2"
        assert main([
            "characterize", "run", spec_file, "-o", str(out1),
            "--cache", str(cache),
        ]) == 0
        assert main([
            "characterize", "run", spec_file, "-o", str(out2),
            "--cache", str(cache), "--jobs", "4",
        ]) == 0
        capsys.readouterr()
        cold = load_datasheet(out1 / "DATASHEET_cli.json")
        warm = load_datasheet(out2 / "DATASHEET_cli.json")
        assert (json.dumps(normalized(cold), sort_keys=True)
                == json.dumps(normalized(warm), sort_keys=True))
        # The warm rerun crossed processes through the disk tier.
        assert warm["provenance"]["cache"]["job_hits"] == len(
            warm["jobs"]
        )


class TestReport:
    def test_report_renders_markdown(self, spec_file, tmp_path, capsys):
        out = tmp_path / "out"
        main(["characterize", "run", spec_file, "-o", str(out)])
        capsys.readouterr()
        assert main([
            "characterize", "report",
            str(out / "DATASHEET_cli.json"),
        ]) == 0
        assert "# Datasheet" in capsys.readouterr().out

    def test_report_rejects_invalid_document(self, tmp_path, capsys):
        path = tmp_path / "DATASHEET_x.json"
        path.write_text(json.dumps({"kind": "datasheet"}))
        assert main(["characterize", "report", str(path)]) == 2
        assert "missing field" in capsys.readouterr().err
