"""Datasheet schema validation, IO round-trip, and markdown rendering."""

import pytest

from repro.characterize import (
    DATASHEET_SCHEMA,
    dump_datasheet,
    load_datasheet,
    normalized,
    render_datasheet_markdown,
    validate_datasheet,
)


def minimal_document():
    return {
        "schema": DATASHEET_SCHEMA,
        "kind": "datasheet",
        "spec": {
            "id": "t", "title": "t", "source": "t.json",
            "engine": "auto", "circuits": ["fig1"],
        },
        "corners": {"fixed": {"kind": "fixed", "options": {}}},
        "jobs": [
            {"id": "fig1/fixed/certify", "circuit": "fig1",
             "corner": "fixed", "analysis": "certify",
             "result": {"min_period": 5, "checks": 2}},
        ],
        "parameters": [
            {"id": "tau", "kind": "clock_period", "corner": "fixed",
             "target": {"op": "<=", "value": 20},
             "rows": [{"circuit": "fig1", "job": "fig1/fixed/certify",
                       "measured": 5, "pass": True, "detail": "ok"}],
             "pass": True},
        ],
        "counters": {"jobs": 1, "checks": 2, "parameters": 1,
                     "parameters_passed": 1},
        "verdict": "PASS",
        "provenance": {"elapsed_seconds": 0.1, "jobs": 1,
                       "cache": {"enabled": False, "hits": 0,
                                 "misses": 0, "job_hits": 0}},
    }


class TestValidation:
    def test_minimal_document_is_valid(self):
        assert validate_datasheet(minimal_document()) == []

    def test_reports_every_problem_at_once(self):
        document = minimal_document()
        del document["verdict"]
        document["parameters"][0]["rows"] = []
        document["counters"]["checks"] = "two"
        problems = validate_datasheet(document)
        assert len(problems) >= 3

    def test_schema_version_mismatch(self):
        document = minimal_document()
        document["schema"] = DATASHEET_SCHEMA + 1
        assert any("schema version" in p
                   for p in validate_datasheet(document))

    def test_duplicate_ids_detected(self):
        document = minimal_document()
        document["jobs"].append(dict(document["jobs"][0]))
        document["parameters"].append(dict(document["parameters"][0]))
        problems = validate_datasheet(document)
        assert any("duplicate job id" in p for p in problems)
        assert any("duplicate parameter id" in p for p in problems)

    def test_bad_target_op(self):
        document = minimal_document()
        document["parameters"][0]["target"]["op"] = "=="
        assert any("target.op" in p for p in validate_datasheet(document))

    def test_non_dict_is_invalid(self):
        assert validate_datasheet([]) == ["datasheet: not an object"]


class TestIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "DATASHEET_t.json"
        dump_datasheet(minimal_document(), path)
        assert load_datasheet(path) == minimal_document()

    def test_load_raises_with_all_problems(self, tmp_path):
        document = minimal_document()
        del document["counters"]
        document["verdict"] = "MAYBE"
        path = tmp_path / "DATASHEET_bad.json"
        dump_datasheet(document, path)
        with pytest.raises(ValueError) as info:
            load_datasheet(path)
        message = str(info.value)
        assert "counters" in message and "MAYBE" in message


class TestNormalized:
    def test_strips_provenance_without_mutating(self):
        document = minimal_document()
        stripped = normalized(document)
        assert "provenance" not in stripped
        assert "provenance" in document
        stripped["spec"]["id"] = "mutated"
        assert document["spec"]["id"] == "t"     # deep copy


class TestMarkdown:
    def test_renders_verdicts_and_provenance(self):
        text = render_datasheet_markdown(minimal_document())
        assert "# Datasheet" in text
        assert "**Verdict: PASS**" in text
        assert "| `tau` | clock_period" in text
        assert "cache disabled" in text

    def test_fail_rows_are_bold(self):
        document = minimal_document()
        document["verdict"] = "FAIL"
        document["parameters"][0]["pass"] = False
        document["parameters"][0]["rows"][0]["pass"] = False
        text = render_datasheet_markdown(document)
        assert "**FAIL**" in text and "**fail**" in text
