"""Spec parsing: happy path and every failure mode.

Failure-mode contract: each ``SpecError`` must name the spec source and
the offending key, so a failing batch run is actionable from the message
alone.
"""

import json
import sys

import pytest

from repro.characterize import SpecError, load_spec, parse_spec


def base_document():
    return {
        "spec": {
            "id": "t",
            "title": "test spec",
            "circuits": ["fig1", "fig5"],
        },
        "corners": {
            "fixed": {"kind": "fixed"},
            "mc": {"kind": "statistical", "samples": 4, "seed": 1},
        },
        "parameter": [
            {"id": "tau", "kind": "clock_period", "max": 20},
        ],
    }


class TestHappyPath:
    def test_parse_resolves_defaults(self):
        spec = parse_spec(base_document(), source="spec.json")
        assert spec.spec_id == "t"
        assert spec.engine == "auto"
        assert spec.circuits == ["fig1", "fig5"]
        assert spec.corners["mc"].options == {
            "model": "uniform", "spread": 1, "samples": 4, "seed": 1,
        }
        (tau,) = spec.parameters
        assert tau.op == "<=" and tau.value == 20
        assert tau.corner == "fixed"          # first corner of a fit kind
        assert tau.circuits == ["fig1", "fig5"]

    def test_yield_parameter_gets_fixed_baseline(self):
        document = base_document()
        document["parameter"].append(
            {"id": "y", "kind": "yield", "min": 0.5}
        )
        spec = parse_spec(document, source="spec.json")
        y = spec.parameters[1]
        assert y.corner == "mc"
        assert y.baseline == "fixed"

    def test_parameter_circuit_subset_keeps_spec_order(self):
        document = base_document()
        document["parameter"][0]["circuits"] = ["fig5", "fig1"]
        spec = parse_spec(document, source="spec.json")
        assert spec.parameters[0].circuits == ["fig1", "fig5"]

    def test_load_json_spec(self, tmp_path):
        path = tmp_path / "small.json"
        path.write_text(json.dumps(base_document()))
        spec = load_spec(path)
        assert spec.source == str(path)

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="tomllib needs Python >= 3.11")
    def test_load_toml_spec(self, tmp_path):
        path = tmp_path / "small.toml"
        path.write_text(
            '[spec]\nid = "t"\ncircuits = ["fig1"]\n'
            '[corners.fixed]\nkind = "fixed"\n'
            '[[parameter]]\nid = "tau"\nkind = "clock_period"\nmax = 9\n'
        )
        spec = load_spec(path)
        assert spec.parameters[0].value == 9

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="tomllib needs Python >= 3.11")
    def test_repo_example_specs_parse(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples"
        small = load_spec(examples / "characterize_figures.toml")
        assert small.spec_id == "figures-small"
        large = load_spec(examples / "characterize_corpus.toml")
        assert len(large.circuits) > 25
        assert {c.kind for c in large.corners.values()} == {
            "fixed", "bounded", "statistical", "clocked",
        }


def expect_error(document, *needles):
    with pytest.raises(SpecError) as info:
        parse_spec(document, source="bad.json")
    message = str(info.value)
    assert "bad.json" in message
    for needle in needles:
        assert needle in message, (needle, message)


class TestFailureModes:
    def test_unknown_circuit_names_file_and_key(self):
        document = base_document()
        document["spec"]["circuits"] = ["fig1", "nonesuch"]
        expect_error(document, "spec.circuits[1]", "nonesuch")

    def test_unknown_corner_kind(self):
        document = base_document()
        document["corners"]["weird"] = {"kind": "typical"}
        expect_error(document, "corners.weird.kind", "typical")

    def test_unknown_corner_reference(self):
        document = base_document()
        document["parameter"][0]["corner"] = "nope"
        expect_error(document, "parameter 'tau'", "corner", "nope")

    def test_corner_kind_mismatch(self):
        document = base_document()
        document["parameter"][0]["corner"] = "mc"
        expect_error(document, "parameter 'tau'", "'statistical'")

    def test_threshold_out_of_unit_interval(self):
        document = base_document()
        document["parameter"].append(
            {"id": "cov", "kind": "fault_coverage", "min": 1.5}
        )
        expect_error(document, "parameter 'cov'", "out of [0, 1]")
        document["parameter"][-1]["min"] = -0.25
        expect_error(document, "parameter 'cov'", "out of [0, 1]")

    def test_duplicate_parameter_ids(self):
        document = base_document()
        document["parameter"].append(
            {"id": "tau", "kind": "clock_period", "max": 5}
        )
        expect_error(document, "parameter 'tau'", "duplicate")

    def test_duplicate_circuit(self):
        document = base_document()
        document["spec"]["circuits"] = ["fig1", "fig1"]
        expect_error(document, "spec.circuits[1]", "duplicate")

    def test_unknown_key_anywhere(self):
        document = base_document()
        document["spec"]["colour"] = "red"
        expect_error(document, "[spec]", "colour")

    def test_unknown_parameter_kind(self):
        document = base_document()
        document["parameter"][0]["kind"] = "slewrate"
        expect_error(document, "parameter 'tau'", "slewrate")

    def test_missing_target_value(self):
        document = base_document()
        del document["parameter"][0]["max"]
        expect_error(document, "parameter 'tau'", "max")

    def test_unknown_engine(self):
        document = base_document()
        document["spec"]["engine"] = "z3"
        expect_error(document, "spec.engine", "z3")

    def test_missing_corner_of_needed_kind(self):
        document = base_document()
        document["parameter"][0] = {
            "id": "b", "kind": "bounded_delay", "max": 9,
        }
        expect_error(document, "parameter 'b'", "bounded")

    def test_yield_without_fixed_baseline(self):
        document = base_document()
        del document["corners"]["fixed"]
        document["parameter"] = [{"id": "y", "kind": "yield", "min": 0.5}]
        expect_error(document, "parameter 'y'", "fixed")

    def test_parameter_circuits_outside_spec(self):
        document = base_document()
        document["parameter"][0]["circuits"] = ["csa8"]
        expect_error(document, "parameter 'tau'", "csa8")

    def test_bad_statistical_model(self):
        document = base_document()
        document["corners"]["mc"]["model"] = "gaussian"
        expect_error(document, "corners.mc.model", "gaussian")

    def test_no_corners(self):
        document = base_document()
        document["corners"] = {}
        expect_error(document, "corners")

    def test_no_parameters(self):
        document = base_document()
        document["parameter"] = []
        expect_error(document, "parameter")

    def test_load_rejects_unknown_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("spec: {}")
        with pytest.raises(SpecError, match=r"\.yaml"):
            load_spec(path)

    def test_load_reports_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec(path)

    def test_spec_error_is_value_error(self):
        # The CLI maps ValueError to exit code 2; SpecError must ride that.
        assert issubclass(SpecError, ValueError)
