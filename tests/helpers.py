"""Shared test fixtures: reference circuits, oracles, and hypothesis
strategies for random circuits."""

from __future__ import annotations

import itertools

from repro.network import Circuit, CircuitBuilder, GateType, loads_bench
from repro.sim import EventSimulator, all_input_vectors

C17_BENCH = """
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Circuit:
    return loads_bench(C17_BENCH, "c17")


def tiny_and_or() -> Circuit:
    """f = (a AND b) OR c with unit delays."""
    b = CircuitBuilder("tiny")
    a, bb, c = b.inputs("a", "b", "c")
    g = b.and_(a, bb, name="g")
    f = b.or_(g, c, name="f")
    b.output(f)
    return b.build()


def exhaustive_transition_delay(circuit: Circuit) -> int:
    """Oracle: max single-stepping pair delay over every vector pair."""
    sim = EventSimulator(circuit)
    vectors = all_input_vectors(circuit)
    return max(
        sim.measure_pair_delay(prev, nxt)
        for prev in vectors
        for nxt in vectors
    )


def exhaustive_floating_delay(circuit: Circuit) -> int:
    """Oracle for the floating delay under the monotone-speedup model:
    the latest time any output can still change over all *integer* delay
    assignments (each gate in [0, d]) and all vector pairs.

    This equals the exact floating delay for circuits whose critical event
    is achievable with integer delays (true for unit-delay circuits); used
    on tiny circuits only.
    """
    from repro.network.transform import apply_speedup

    gates = [
        node.name
        for node in circuit.nodes()
        if node.gate_type != GateType.INPUT
    ]
    ranges = [range(circuit.node(name).delay + 1) for name in gates]
    worst = 0
    vectors = all_input_vectors(circuit)
    for assignment in itertools.product(*ranges):
        sped = apply_speedup(circuit, dict(zip(gates, assignment)))
        sim = EventSimulator(sped)
        for prev in vectors:
            for nxt in vectors:
                worst = max(worst, sim.measure_pair_delay(prev, nxt))
    return worst


def random_circuit(
    seed: int,
    num_inputs: int = 3,
    num_gates: int = 6,
    max_delay: int = 2,
) -> Circuit:
    """Small random circuit for oracle-based property tests.

    A thin delegate to the fuzz corpus generator — the one seeded
    random-circuit implementation shared by the property suites and
    ``trued fuzz`` (see :mod:`repro.fuzz.generate`)."""
    from repro.fuzz.generate import random_gate_circuit

    return random_gate_circuit(
        seed,
        num_inputs=num_inputs,
        num_gates=num_gates,
        max_delay=max_delay,
    )


def assert_same_function(left: Circuit, right: Circuit) -> None:
    """Exhaustive functional equivalence for small circuits."""
    assert set(left.inputs) == set(right.inputs)
    assert left.outputs == right.outputs
    for vec in all_input_vectors(left):
        assert left.evaluate_outputs(vec) == right.evaluate_outputs(vec)
