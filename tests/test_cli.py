import pytest

from repro.cli import load_circuit, main
from repro.network import dumps_verilog

from tests.helpers import C17_BENCH, c17


@pytest.fixture
def bench_file(tmp_path):
    path = tmp_path / "c17.bench"
    path.write_text(C17_BENCH)
    return str(path)


@pytest.fixture
def verilog_file(tmp_path):
    path = tmp_path / "c17.v"
    path.write_text(dumps_verilog(c17()))
    return str(path)


class TestLoader:
    def test_by_extension(self, bench_file, verilog_file):
        assert load_circuit(bench_file).num_gates == 6
        assert load_circuit(verilog_file).num_gates == 6

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "c17.xyz"
        path.write_text("x")
        with pytest.raises(ValueError):
            load_circuit(str(path))


class TestCommands:
    def test_stats(self, bench_file, capsys):
        assert main(["stats", bench_file]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out and "5" in out

    def test_report(self, bench_file, capsys):
        assert main(["report", bench_file, "--paths", "2"]) == 0
        out = capsys.readouterr().out
        assert "path #1" in out and "path #2" in out

    def test_delays(self, bench_file, capsys):
        assert main(["delays", bench_file, "--bounded"]) == 0
        out = capsys.readouterr().out
        assert "topological delay (l.d.): 3" in out
        assert "floating delay = 3" in out
        assert "transition delay = 3" in out
        assert "bounded-transition delay = 3" in out
        assert "Theorem 3.1" in out

    def test_vectors_to_file(self, bench_file, tmp_path, capsys):
        out_file = tmp_path / "vectors.txt"
        assert main(["vectors", bench_file, "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "G22" in text and "G23" in text

    def test_certify(self, bench_file, verilog_file, capsys):
        code = main(["certify", bench_file, "--accurate", verilog_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "CERTIFIED" in out

    def test_faults(self, bench_file, capsys):
        assert main(["faults", bench_file, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "two-pattern test" in out

    def test_simulate_with_vcd(self, bench_file, tmp_path, capsys):
        vcd_file = tmp_path / "run.vcd"
        code = main(
            [
                "simulate",
                bench_file,
                "--prev", "00000",
                "--next", "11111",
                "--vcd", str(vcd_file),
            ]
        )
        assert code == 0
        assert "$enddefinitions" in vcd_file.read_text()

    def test_simulate_bad_vector_width(self, bench_file, capsys):
        code = main(
            ["simulate", bench_file, "--prev", "00", "--next", "11"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_convert_roundtrip(self, bench_file, tmp_path, capsys):
        out_file = tmp_path / "c17.blif"
        assert main(["convert", bench_file, "-o", str(out_file)]) == 0
        from repro.network import load_blif

        circuit = load_blif(str(out_file))
        vec = {n: True for n in circuit.inputs}
        assert circuit.evaluate_outputs(vec) == c17().evaluate_outputs(vec)

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/file.bench"]) == 2

    def test_engine_flag(self, bench_file, capsys):
        assert main(["delays", bench_file, "--engine", "sat"]) == 0

    def test_lint_clean(self, bench_file, capsys):
        assert main(["lint", bench_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_warnings_exit_one(self, tmp_path, capsys):
        path = tmp_path / "w.bench"
        path.write_text(
            "INPUT(a)\nINPUT(unused)\nOUTPUT(f)\nf = NOT(a)\n"
        )
        assert main(["lint", str(path)]) == 1
        assert "unused-input" in capsys.readouterr().out

    def test_estimate(self, bench_file, capsys):
        assert main(["estimate", bench_file, "--pairs", "16",
                     "--climbs", "2"]) == 0
        out = capsys.readouterr().out
        assert "lower bound" in out and "upper bound" in out


class TestTracingAndFaultTolerance:
    def test_trace_flag_exports_a_span_tree(
        self, bench_file, tmp_path, capsys
    ):
        import json

        trace_file = tmp_path / "trace.json"
        assert main(
            ["delays", bench_file, "--trace", str(trace_file)]
        ) == 0
        data = json.loads(trace_file.read_text())
        assert data["name"] == "session"
        assert data["children"], "root span has no phases"
        assert data["elapsed_ms"] >= max(
            child["elapsed_ms"] for child in data["children"]
        )

    def test_metrics_flag_renders_the_trace_tree(self, bench_file, capsys):
        assert main(["delays", bench_file, "--metrics"]) == 0
        err = capsys.readouterr().err
        assert "execution trace" in err

    def test_vectors_jobs4_with_injected_crash_match_jobs1(
        self, bench_file, tmp_path, monkeypatch
    ):
        """Acceptance: a killed worker degrades throughput, not results —
        the jobs=4 output file is byte-identical to the jobs=1 one."""
        serial_file = tmp_path / "serial.txt"
        sharded_file = tmp_path / "sharded.txt"
        assert main(
            ["vectors", bench_file, "--jobs", "1", "-o", str(serial_file)]
        ) == 0
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1")
        assert main(
            ["vectors", bench_file, "--jobs", "4", "--retries", "2",
             "-o", str(sharded_file)]
        ) == 0
        assert sharded_file.read_bytes() == serial_file.read_bytes()

    def test_vectors_jobs4_with_hung_worker_match_jobs1(
        self, bench_file, tmp_path, monkeypatch
    ):
        serial_file = tmp_path / "serial.txt"
        sharded_file = tmp_path / "sharded.txt"
        assert main(
            ["vectors", bench_file, "--jobs", "1", "-o", str(serial_file)]
        ) == 0
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:0")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "10")
        assert main(
            ["vectors", bench_file, "--jobs", "4", "--timeout", "5",
             "-o", str(sharded_file)]
        ) == 0
        assert sharded_file.read_bytes() == serial_file.read_bytes()


class TestBenchCommand:
    """`trued bench` — the compare/report surfaces (the run surface is
    exercised subprocess-deep by tests/bench/test_runner.py)."""

    @pytest.fixture
    def record_pair(self, tmp_path):
        import json

        from repro.bench.schema import SCHEMA_VERSION

        def record(wall_s):
            return {
                "schema": SCHEMA_VERSION, "kind": "suite", "suite": "demo",
                "repeats": 1, "warmup": 0, "env": {},
                "cases": [{
                    "name": "a", "wall_s": wall_s, "samples": [wall_s],
                    "checks": 10, "counters": {},
                    "cache": {"hits": 0, "misses": 0, "hit_rate": 0.0},
                    "peak_rss_kb": 1000, "spans": [],
                }],
            }

        old = tmp_path / "old.json"
        slow = tmp_path / "slow.json"
        old.write_text(json.dumps(record(1.0)))
        slow.write_text(json.dumps(record(2.0)))
        return str(old), str(slow)

    def test_compare_identical_exits_zero(self, record_pair, capsys):
        old, __ = record_pair
        assert main(["bench", "compare", old, old]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_slowdown_exits_nonzero(self, record_pair, capsys):
        old, slow = record_pair
        assert main(["bench", "compare", old, slow]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_tolerance_override(self, record_pair):
        old, slow = record_pair
        assert main(["bench", "compare", old, slow,
                     "--tolerance", "wall_s=3.0:0"]) == 0

    def test_compare_writes_markdown_report(self, record_pair, tmp_path):
        old, slow = record_pair
        report = tmp_path / "report.md"
        assert main(["bench", "compare", old, slow,
                     "--report", str(report)]) == 1
        assert "REGRESSION" in report.read_text()

    def test_report_renders_a_record(self, record_pair, capsys):
        old, __ = record_pair
        assert main(["bench", "report", old]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "|" in out

    def test_run_rejects_unknown_suite(self, tmp_path, capsys):
        assert main(["bench", "run", "--suites", "no_such_suite",
                     "--out", str(tmp_path)]) == 2
        assert "no_such_suite" in capsys.readouterr().err
