"""Cross-validation of two independent bounded-delay implementations.

``repro.core.bounded`` builds *symbolic* guaranteed-value functions over
the doubled vector-pair space; ``repro.sim.ternary`` computes the same
guarantees *concretely* for one pair.  Both implement the identical
interval semantics, so evaluating the symbolic functions on a concrete
pair must reproduce the ternary grid exactly."""

from hypothesis import given, settings, strategies as st

from repro.boolfn import BddEngine
from repro.core import BoundedAnalysis, monotone_speedup_bounds
from repro.core.vectors import VectorPair
from repro.sim import (
    ONE,
    X,
    ZERO,
    bounded_transition_analysis,
    monotone_bounds,
)
from repro.sim.logic_sim import all_input_vectors

from tests.helpers import random_circuit

SEEDS = st.integers(min_value=0, max_value=5_000)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, pair_index=st.integers(0, 63))
def test_symbolic_guarantees_match_ternary_grid(seed, pair_index):
    circuit = random_circuit(seed, num_inputs=3, num_gates=5, max_delay=2)
    vectors = all_input_vectors(circuit)
    v_prev = vectors[pair_index % len(vectors)]
    v_next = vectors[(pair_index // len(vectors)) % len(vectors)]
    pair = VectorPair(dict(v_prev), dict(v_next))
    env = pair.to_model()

    engine = BddEngine()
    analysis = BoundedAnalysis(
        circuit, bounds=monotone_speedup_bounds(circuit), engine=engine
    )
    grid = bounded_transition_analysis(
        circuit, v_prev, v_next, monotone_bounds(circuit)
    )
    horizon = max(analysis.latest(o) for o in circuit.outputs)
    for name in circuit.topological_order():
        if circuit.node(name).gate_type.value == "INPUT":
            continue
        for t in range(0, horizon + 1):
            u1, u0 = analysis.guaranteed_pair(name, t)
            sym = (
                ONE
                if engine.evaluate(u1, env)
                else ZERO
                if engine.evaluate(u0, env)
                else X
            )
            concrete = grid[name][min(t, len(grid[name]) - 1)]
            assert sym == concrete, (name, t, sym, concrete)
