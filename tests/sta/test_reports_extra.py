"""Additional report-layer coverage."""

from repro.sta import analyze, render_table, timing_report

from tests.helpers import c17, tiny_and_or


class TestRenderTableEdges:
    def test_no_title(self):
        text = render_table(["x"], [["1"]])
        assert text.splitlines()[0].strip() == "x"

    def test_mixed_types(self):
        text = render_table(
            ["name", "n", "flag"], [["a", 1, True], ["bb", 22, False]]
        )
        assert "True" in text and "22" in text

    def test_column_width_driven_by_longest_cell(self):
        text = render_table(["h"], [["exceedingly-long-cell"]])
        header_line = text.splitlines()[0]
        assert len(header_line) == len("exceedingly-long-cell")


class TestTimingReportEdges:
    def test_single_path_default(self):
        report = timing_report(tiny_and_or())
        assert "path #1" in report and "path #2" not in report

    def test_arrival_column_monotone(self):
        report = timing_report(c17())
        arrivals = [
            int(line.rsplit("arrival=", 1)[1])
            for line in report.splitlines()
            if "arrival=" in line
        ]
        assert arrivals == sorted(arrivals)


class TestAnalyzeEdges:
    def test_dangling_node_gets_default_requirement(self):
        from repro.network import Circuit, GateType

        circuit = Circuit("d")
        circuit.add_input("a")
        circuit.add_gate("used", GateType.BUF, ["a"])
        circuit.add_gate("dangling", GateType.NOT, ["a"])
        circuit.set_outputs(["used"])
        analysis = analyze(circuit)
        assert analysis.required["dangling"] == analysis.clock_period

    def test_critical_path_with_relaxed_clock(self):
        analysis = analyze(c17(), clock_period=50)
        path = analysis.critical_path()
        assert path[-1] in c17().outputs
