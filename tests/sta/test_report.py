from repro.sta import render_table, statistics_row, timing_report

from tests.helpers import c17


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert all(len(line) == len(lines[1]) for line in lines[3:])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestTimingReport:
    def test_contains_paths_and_slack(self):
        report = timing_report(c17(), max_paths=2)
        assert "worst slack" in report
        assert "path #1" in report and "path #2" in report
        assert "NAND" in report

    def test_respects_clock_period(self):
        report = timing_report(c17(), clock_period=9)
        assert "clock period : 9" in report
        assert "worst slack  : 6" in report


class TestStatisticsRow:
    def test_c17_row(self):
        row = statistics_row(c17())
        assert row == ["c17", 5, 2, 12, 3]
