
from repro.network import CircuitBuilder, path_length
from repro.sta import analyze, arrival_times, gate_depth, topological_delay

from tests.helpers import c17


class TestAnalyze:
    def test_default_period_gives_zero_worst_slack(self):
        analysis = analyze(c17())
        assert analysis.clock_period == 3
        assert analysis.worst_slack == 0

    def test_relaxed_period_adds_slack(self):
        analysis = analyze(c17(), clock_period=10)
        assert analysis.worst_slack == 7

    def test_arrival_and_required_consistent(self):
        analysis = analyze(c17())
        slack = analysis.slack
        for name in analysis.arrival:
            assert slack[name] == analysis.required[name] - analysis.arrival[name]
            assert slack[name] >= 0

    def test_critical_path_is_longest(self):
        c = c17()
        analysis = analyze(c)
        path = analysis.critical_path()
        assert path_length(c, path) == c.topological_delay()
        assert path[0] in c.inputs and path[-1] in c.outputs

    def test_critical_nodes_nonempty(self):
        analysis = analyze(c17())
        critical = analysis.critical_nodes()
        assert critical
        slack = analysis.slack
        assert all(slack[name] == 0 for name in critical)

    def test_unbalanced_circuit(self):
        b = CircuitBuilder("u")
        a, x = b.inputs("a", "x")
        slow = b.buf(a, name="slow", delay=9)
        g = b.and_(slow, x, name="g")
        b.output(g)
        c = b.build()
        analysis = analyze(c)
        assert analysis.slack["x"] == 9
        assert analysis.slack["slow"] == 0


class TestHelpers:
    def test_topological_delay(self):
        assert topological_delay(c17()) == 3

    def test_arrival_times(self):
        arrivals = arrival_times(c17())
        assert arrivals["G22"] == 3 and arrivals["G10"] == 1

    def test_gate_depth_ignores_delays(self):
        b = CircuitBuilder("d")
        a, = b.inputs("a")
        g = b.buf(a, name="g", delay=100)
        h = b.not_(g, name="h", delay=1)
        b.output(h)
        assert gate_depth(b.build()) == 2
