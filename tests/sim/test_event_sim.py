
import pytest

from repro.network import CircuitBuilder
from repro.sim import EventSimulator, all_input_vectors
from repro.circuits import fig1_circuit, fig1_vector_pair, fig2_circuit

from tests.helpers import c17, random_circuit


class TestSingleStepping:
    def test_final_values_match_functional(self):
        c = c17()
        sim = EventSimulator(c)
        vectors = all_input_vectors(c)
        for prev, nxt in zip(vectors, reversed(vectors)):
            result = sim.simulate_transition(prev, nxt)
            assert result.output_values() == c.evaluate_outputs(nxt)

    def test_no_change_no_events(self):
        c = c17()
        sim = EventSimulator(c)
        vec = {"G1": 1, "G2": 0, "G3": 1, "G6": 0, "G7": 1}
        result = sim.simulate_transition(vec, vec)
        assert result.delay == 0
        assert all(result.waveforms[n].is_stable() for n in result.waveforms)

    def test_settles_within_topological_delay(self):
        for seed in range(15):
            c = random_circuit(seed)
            sim = EventSimulator(c)
            omega = max(c.levels().values())
            vectors = all_input_vectors(c)
            for prev in vectors[:4]:
                for nxt in vectors[-4:]:
                    result = sim.simulate_transition(prev, nxt)
                    assert result.waveforms.last_event_time() <= omega

    def test_delay_bounded_by_output_arrival(self):
        c = c17()
        sim = EventSimulator(c)
        vectors = all_input_vectors(c)
        for prev in vectors:
            for nxt in vectors:
                assert sim.measure_pair_delay(prev, nxt) <= 3

    def test_event_times_respect_min_delay(self):
        b = CircuitBuilder("slow")
        a, = b.inputs("a")
        g = b.not_(a, name="g", delay=4)
        b.output(g)
        c = b.build()
        sim = EventSimulator(c)
        result = sim.simulate_transition({"a": 0}, {"a": 1})
        assert result.waveforms["g"].events == [(4, False)]

    def test_staggered_input_times(self):
        b = CircuitBuilder("st")
        a, x = b.inputs("a", "x")
        g = b.and_(a, x, name="g")
        b.output(g)
        c = b.build()
        sim = EventSimulator(c)
        result = sim.simulate_transition(
            {"a": 0, "x": 0}, {"a": 1, "x": 1}, input_times={"a": 0, "x": 5}
        )
        assert result.waveforms["g"].events == [(6, True)]


class TestGlitchSemantics:
    def test_zero_width_glitch_suppressed(self):
        # Both AND inputs swap simultaneously: output must not pulse.
        b = CircuitBuilder("z")
        a, = b.inputs("a")
        na = b.not_(a, name="na", delay=0)
        g = b.and_(a, na, name="g", delay=1)
        b.output(g)
        c = b.build()
        sim = EventSimulator(c)
        result = sim.simulate_transition({"a": 0}, {"a": 1})
        assert result.waveforms["g"].is_stable()

    def test_unit_width_pulse_propagates(self):
        # na lags a by one unit: the AND sees (1,1) during [0? ...] and
        # emits a real pulse (transport semantics, Sec. IV-A).
        b = CircuitBuilder("p")
        a, = b.inputs("a")
        na = b.not_(a, name="na", delay=1)
        g = b.and_(a, na, name="g", delay=1)
        b.output(g)
        c = b.build()
        sim = EventSimulator(c)
        result = sim.simulate_transition({"a": 0}, {"a": 1})
        assert result.waveforms["g"].events == [(1, True), (2, False)]

    def test_fig1_glitch_chain_masks_critical_event(self):
        c = fig1_circuit()
        sim = EventSimulator(c)
        prev, nxt = fig1_vector_pair()
        result = sim.simulate_transition(prev, nxt)
        # g2 glitches during [2,3), g3 during [3,4), g1 rises at 4;
        # the output has a single early rise at 3 and nothing after.
        assert result.waveforms["g2"].events == [(2, True), (3, False)]
        assert result.waveforms["g3"].events == [(3, True), (4, False)]
        assert result.waveforms["g1"].events == [(4, True)]
        assert result.waveforms["f"].events == [(3, True)]
        assert result.delay == 3

    def test_fig2_output_never_moves(self):
        c = fig2_circuit()
        sim = EventSimulator(c)
        for prev in (False, True):
            for nxt in (False, True):
                result = sim.simulate_transition({"a": prev}, {"a": nxt})
                assert result.waveforms["e"].is_stable()
                assert result.delay == 0

    def test_fig2_internal_glitch_on_falling_a(self):
        c = fig2_circuit()
        sim = EventSimulator(c)
        result = sim.simulate_transition({"a": True}, {"a": False})
        # d glitches low during [4,5) while c holds e at 1.
        assert result.waveforms["d"].events == [(4, False), (5, True)]


class TestClockedMode:
    def test_valid_period_matches_reference(self):
        c = c17()
        sim = EventSimulator(c)
        vectors = all_input_vectors(c)[:10]
        clocked = sim.simulate_clocked(vectors, period=4)
        for k in range(1, len(vectors)):
            assert clocked.sampled[k - 1] == c.evaluate_outputs(vectors[k])

    def test_too_short_period_can_mislatch(self):
        b = CircuitBuilder("sl")
        a, = b.inputs("a")
        g = b.buf(a, name="g", delay=6)
        b.output(g)
        c = b.build()
        sim = EventSimulator(c)
        vectors = [{"a": 0}, {"a": 1}, {"a": 0}]
        clocked = sim.simulate_clocked(vectors, period=3)
        assert clocked.sampled[0] != c.evaluate_outputs(vectors[1])

    def test_rejects_bad_arguments(self):
        sim = EventSimulator(c17())
        with pytest.raises(ValueError):
            sim.simulate_clocked([], 4)
        with pytest.raises(ValueError):
            sim.simulate_clocked([{n: 0 for n in c17().inputs}], 0)


class TestOracleAgreement:
    def test_pair_delay_equals_waveform_last_output_event(self):
        c = c17()
        sim = EventSimulator(c)
        vectors = all_input_vectors(c)
        for prev in vectors[:8]:
            for nxt in vectors[-8:]:
                result = sim.simulate_transition(prev, nxt)
                latest = 0
                for out in c.outputs:
                    t = result.waveforms[out].last_event_time
                    latest = max(latest, t or 0)
                assert result.delay == latest
