"""The stateful TimingSession API (beyond what EventSimulator wraps)."""

import pytest

from repro.network import CircuitBuilder
from repro.sim import EventSimulator

from tests.helpers import c17


def chain_circuit():
    b = CircuitBuilder("chain")
    a, = b.inputs("a")
    g = b.buf(a, name="g", delay=4)
    b.output(g)
    return b.build()


class TestSession:
    def test_settled_start(self):
        sim = EventSimulator(chain_circuit())
        session = sim.session({"a": True})
        assert session.value_at_sample("g") is True
        assert session.quiescent
        assert session.now == 0

    def test_incremental_injection(self):
        sim = EventSimulator(chain_circuit())
        session = sim.session({"a": False})
        session.inject(0, {"a": True})
        session.advance(until=3)
        assert session.value_at_sample("g") is False  # still in flight
        session.advance(until=4)
        assert session.value_at_sample("g") is True

    def test_interleaved_inject_and_advance(self):
        sim = EventSimulator(chain_circuit())
        session = sim.session({"a": False})
        session.inject(0, {"a": True})
        session.advance(until=2)
        session.inject(3, {"a": False})   # mid-flight reversal
        session.advance()
        # a's pulse 0->1 at 0 then 1->0 at 3: g pulses [4, 7).
        assert session.waveforms["g"].events == [(4, True), (7, False)]

    def test_cannot_inject_into_past(self):
        sim = EventSimulator(chain_circuit())
        session = sim.session({"a": False})
        session.advance(until=10)
        with pytest.raises(ValueError):
            session.inject(5, {"a": True})

    def test_advance_to_quiescence(self):
        sim = EventSimulator(c17())
        session = sim.session({n: False for n in c17().inputs})
        session.inject(0, {n: True for n in c17().inputs})
        session.advance()
        assert session.quiescent
        final = c17().evaluate({n: True for n in c17().inputs})
        for out in c17().outputs:
            assert session.value_at_sample(out) == final[out]

    def test_now_tracks_until(self):
        sim = EventSimulator(chain_circuit())
        session = sim.session({"a": False})
        session.advance(until=17)
        assert session.now == 17
