"""Unit tests for the vectorized Boolean kernel (repro.sim.wordsim)."""

import random

import pytest

import repro.sim
import repro.sim.wordsim as wordsim
from repro.network import CircuitBuilder
from repro.sim import (
    WordKernel,
    batch_settle,
    batch_settle_outputs,
    kernel_for,
    pack_vectors,
    settle,
    simulate_words,
    unpack_word,
)
from repro.sim.wordsim import NUMPY_MIN_WIDTH, _np

from tests.helpers import c17, random_circuit, tiny_and_or


def random_vectors(circuit, count, seed=11):
    rng = random.Random(seed)
    return [
        {name: bool(rng.getrandbits(1)) for name in circuit.inputs}
        for __ in range(count)
    ]


class TestBackends:
    def test_int_and_numpy_agree(self):
        if _np is None:
            pytest.skip("numpy not installed")
        c = c17()
        rng = random.Random(3)
        for width in (1, 64, 100, 4096):
            words = {
                name: rng.getrandbits(width) for name in c.inputs
            }
            got_int = WordKernel(c, backend="int").simulate(
                words, width=width
            )
            got_np = WordKernel(c, backend="numpy").simulate(
                words, width=width
            )
            assert got_int == got_np

    def test_auto_picks_numpy_only_for_wide_batches(self):
        k = kernel_for(c17())
        assert k.resolved_backend(64) == "int"
        if _np is not None:
            assert k.resolved_backend(NUMPY_MIN_WIDTH) == "numpy"

    def test_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORDSIM_BACKEND", "int")
        assert kernel_for(c17()).resolved_backend(NUMPY_MIN_WIDTH) == "int"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown wordsim backend"):
            WordKernel(c17(), backend="gpu")

    def test_width_beyond_64_lanes(self):
        c = tiny_and_or()
        vectors = random_vectors(c, 200)
        assert batch_settle(c, vectors) == [settle(c, v) for v in vectors]


class TestBatchSettle:
    def test_matches_scalar_settle(self):
        c = c17()
        vectors = random_vectors(c, 130)
        assert batch_settle(c, vectors) == [settle(c, v) for v in vectors]

    def test_outputs_only(self):
        c = c17()
        vectors = random_vectors(c, 17)
        batch = batch_settle_outputs(c, vectors)
        for vector, got in zip(vectors, batch):
            assert got == c.evaluate_outputs(vector)
            assert set(got) == set(c.outputs)

    def test_empty_batch(self):
        assert batch_settle(c17(), []) == []

    def test_check_mode_passes_on_agreement(self):
        c = tiny_and_or()
        vectors = random_vectors(c, 9)
        assert batch_settle(c, vectors, check=True) == [
            settle(c, v) for v in vectors
        ]

    def test_check_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORDSIM_CHECK", "1")
        c = tiny_and_or()
        vectors = random_vectors(c, 5)
        assert batch_settle(c, vectors) == [settle(c, v) for v in vectors]


class TestPackUnpack:
    def test_round_trip(self):
        c = c17()
        vectors = random_vectors(c, 77)
        words = pack_vectors(vectors, c.inputs)
        for name in c.inputs:
            assert unpack_word(words[name], len(vectors)) == [
                v[name] for v in vectors
            ]

    def test_missing_input_in_vector(self):
        c = tiny_and_or()
        vectors = [{"a": True, "b": True, "c": False}, {"a": True}]
        with pytest.raises(ValueError, match=r"vector 1 .* 'b'"):
            pack_vectors(vectors, c.inputs)


class TestErrorContracts:
    """The word path raises the same errors as the scalar path."""

    def test_missing_input_word(self):
        c = tiny_and_or()
        expected = r"missing value for primary input 'b' of circuit 'tiny'"
        with pytest.raises(ValueError, match=expected):
            simulate_words(c, {"a": 1, "c": 0})
        with pytest.raises(ValueError, match=expected):
            c.evaluate({"a": True, "c": False})

    def test_unknown_input_word(self):
        c = tiny_and_or()
        with pytest.raises(
            ValueError, match=r"unknown inputs \['z'\] for circuit 'tiny'"
        ):
            simulate_words(c, {"a": 1, "b": 1, "c": 0, "z": 1})

    def test_zero_fanin_gate_rejected_both_paths(self):
        # Corrupt a gate after construction: both evaluators must reject
        # it with the construction-time arity error, not fold it into a
        # constant.
        expected = r"gate 'g' needs at least one fanin"
        scalar = tiny_and_or()
        scalar.node("g").fanins = ()
        with pytest.raises(ValueError, match=expected) as scalar_err:
            settle(scalar, {"a": True, "b": True, "c": False})
        word = tiny_and_or()
        word.node("g").fanins = ()
        with pytest.raises(ValueError, match=expected) as word_err:
            simulate_words(word, {"a": 1, "b": 1, "c": 0})
        assert str(scalar_err.value) == str(word_err.value)

    def test_unary_arity_validated(self):
        b = CircuitBuilder("u")
        a, bb = b.inputs("a", "b")
        g = b.not_(a, name="g")
        b.output(g)
        c = b.build()
        c.node("g").fanins = ("a", "b")
        with pytest.raises(ValueError, match=r"needs 1 fanin"):
            simulate_words(c, {"a": 1, "b": 0})

    def test_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            simulate_words(c17(), {}, width=0)


class TestKernelCache:
    def test_cache_reuse_and_invalidation(self):
        c = tiny_and_or()
        first = kernel_for(c)
        assert kernel_for(c) is first
        c.set_delay("g", 5)  # journalled edit bumps the revision
        second = kernel_for(c)
        assert second is not first

    def test_rewire_changes_results(self):
        b = CircuitBuilder("rw")
        a, bb = b.inputs("a", "b")
        g = b.and_(a, bb, name="g")
        b.output(g)
        c = b.build()
        before = simulate_words(c, {"a": 0b1100, "b": 0b1010})
        assert before["g"] & 0b1111 == 0b1000
        c.rewire("g", ["a", "a"])
        after = simulate_words(c, {"a": 0b1100, "b": 0b1010})
        assert after["g"] & 0b1111 == 0b1100


class TestMetrics:
    def test_counters_recorded(self):
        from repro.runtime.metrics import metrics_scope

        c = c17()
        with metrics_scope() as metrics:
            batch_settle(c, random_vectors(c, 96))
        assert metrics.counter("wordsim.batches") == 1
        assert metrics.counter("wordsim.lanes") == 96
        assert metrics.counter("wordsim.gate_ops") == 6


class TestPublicSurface:
    """Regression: the kernel entry points stay exported (the historical
    simulate_words was exported but orphaned once before)."""

    def test_all_names_importable(self):
        for name in repro.sim.__all__:
            assert getattr(repro.sim, name) is not None, name

    def test_simulate_words_is_the_kernel(self):
        import repro.sim.logic_sim as logic_sim

        assert repro.sim.simulate_words is wordsim.simulate_words
        assert logic_sim.simulate_words is wordsim.simulate_words

    def test_kernel_names_exported(self):
        for name in (
            "WordKernel",
            "batch_settle",
            "batch_settle_outputs",
            "kernel_for",
            "pack_vectors",
            "unpack_word",
            "simulate_words",
        ):
            assert name in repro.sim.__all__


class TestRandomCircuits:
    def test_batch_settle_on_random_circuits(self):
        for seed in range(8):
            c = random_circuit(seed, num_inputs=4, num_gates=8)
            vectors = random_vectors(c, 70, seed=seed)
            assert batch_settle(c, vectors, check=True) == [
                settle(c, v) for v in vectors
            ]
