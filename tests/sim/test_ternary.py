import itertools


from repro.network import GateType
from repro.sim import (
    ONE,
    X,
    ZERO,
    bounded_transition_analysis,
    fixed_bounds,
    monotone_bounds,
    pair_bounded_delay,
    ternary_gate,
    ternary_settle,
)
from repro.circuits import fig2_circuit

from tests.helpers import c17, tiny_and_or


class TestTernaryGate:
    def test_controlling_dominates_x(self):
        assert ternary_gate(GateType.AND, [ZERO, X]) == ZERO
        assert ternary_gate(GateType.OR, [ONE, X]) == ONE
        assert ternary_gate(GateType.NAND, [ZERO, X]) == ONE
        assert ternary_gate(GateType.NOR, [ONE, X]) == ZERO

    def test_x_propagates_when_undetermined(self):
        assert ternary_gate(GateType.AND, [ONE, X]) == X
        assert ternary_gate(GateType.XOR, [ONE, X]) == X
        assert ternary_gate(GateType.NOT, [X]) == X

    def test_binary_cases_match_boolean(self):
        for gate in (GateType.AND, GateType.OR, GateType.XOR, GateType.XNOR,
                     GateType.NAND, GateType.NOR):
            for a, b in itertools.product([0, 1], repeat=2):
                from repro.network import evaluate_gate

                expected = int(evaluate_gate(gate, [bool(a), bool(b)]))
                assert ternary_gate(gate, [a, b]) == expected

    def test_constants(self):
        assert ternary_gate(GateType.CONST0, []) == ZERO
        assert ternary_gate(GateType.CONST1, []) == ONE


class TestTernarySettle:
    def test_all_binary_matches_evaluate(self):
        c = tiny_and_or()
        values = ternary_settle(c, {"a": ONE, "b": ONE, "c": ZERO})
        assert values["f"] == ONE

    def test_x_input_blocks_only_where_needed(self):
        c = tiny_and_or()
        # c=1 controls the OR regardless of the X.
        values = ternary_settle(c, {"a": X, "b": ONE, "c": ONE})
        assert values["f"] == ONE
        values = ternary_settle(c, {"a": X, "b": ONE, "c": ZERO})
        assert values["f"] == X


class TestBoundedAnalysis:
    def test_fixed_bounds_match_event_simulation(self):
        from repro.sim import EventSimulator

        c = c17()
        sim = EventSimulator(c)
        prev = {"G1": 1, "G2": 1, "G3": 0, "G6": 1, "G7": 0}
        nxt = {"G1": 0, "G2": 1, "G3": 1, "G6": 0, "G7": 1}
        grid = bounded_transition_analysis(c, prev, nxt, fixed_bounds(c))
        result = sim.simulate_transition(prev, nxt)
        # Under degenerate bounds the grid must agree with the simulator
        # wherever it is definite (and is definite everywhere).
        for name, row in grid.items():
            for t, value in enumerate(row):
                assert value in (ZERO, ONE)
                assert bool(value) == result.waveforms[name].value_at(t)

    def test_grid_is_conservative_for_monotone_bounds(self):
        from repro.network.transform import apply_speedup
        from repro.sim import EventSimulator

        c = tiny_and_or()
        prev = {"a": 0, "b": 1, "c": 1}
        nxt = {"a": 1, "b": 1, "c": 0}
        grid = bounded_transition_analysis(c, prev, nxt)
        # Any concrete integer speedup's waveform must fit the grid.
        gates = [n.name for n in c.nodes() if n.fanins]
        for delays in itertools.product(*[range(0, 2) for __ in gates]):
            sped = apply_speedup(c, dict(zip(gates, delays)))
            result = EventSimulator(sped).simulate_transition(prev, nxt)
            for name, row in grid.items():
                for t, value in enumerate(row):
                    if value != X:
                        assert bool(value) == result.waveforms[name].value_at(
                            t
                        ), (name, t, delays)

    def test_pair_bounded_delay_fig2(self):
        c = fig2_circuit()
        worst = max(
            pair_bounded_delay(c, {"a": p}, {"a": n})
            for p in (False, True)
            for n in (False, True)
        )
        # The interval analysis cannot see the x3/b correlation, so it
        # reports the conservative bound 5 — the floating delay.
        assert worst == 5

    def test_stable_pair_has_zero_delay(self):
        c = tiny_and_or()
        vec = {"a": 1, "b": 0, "c": 1}
        assert pair_bounded_delay(c, vec, vec) == 0

    def test_rejects_nothing_but_documents_horizon(self):
        c = tiny_and_or()
        grid = bounded_transition_analysis(
            c, {"a": 0, "b": 0, "c": 0}, {"a": 1, "b": 1, "c": 1}
        )
        for row in grid.values():
            assert row[-1] in (ZERO, ONE)  # settled by the horizon
