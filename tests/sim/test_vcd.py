from repro.sim import EventSimulator, Waveform, WaveformSet, dumps_vcd, loads_vcd

from tests.helpers import c17


def sample_set():
    a = Waveform(False)
    a.append(2, True)
    a.append(5, False)
    b = Waveform(True)
    return WaveformSet({"sig_a": a, "sig_b": b})


class TestDump:
    def test_header_and_vars(self):
        text = dumps_vcd(sample_set())
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "sig_a" in text and "sig_b" in text
        assert "$enddefinitions $end" in text

    def test_initial_values_dumped(self):
        text = dumps_vcd(sample_set())
        dump_block = text.split("$dumpvars")[1].split("$end")[0]
        assert "0" in dump_block and "1" in dump_block

    def test_subset_of_names(self):
        text = dumps_vcd(sample_set(), names=["sig_a"])
        assert "sig_b" not in text

    def test_identifiers_unique_for_many_signals(self):
        waves = WaveformSet(
            {f"n{i}": Waveform(False) for i in range(200)}
        )
        text = dumps_vcd(waves)
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(set(ids)) == 200


class TestRoundTrip:
    def test_simple_roundtrip(self):
        original = sample_set()
        again = loads_vcd(dumps_vcd(original))
        for name in original.names():
            assert again[name].initial == original[name].initial
            assert again[name].events == original[name].events

    def test_simulation_roundtrip(self):
        # VCD starts at time 0, so compare sampled values from 0 onward
        # (the pre-zero initial is not representable).
        circuit = c17()
        sim = EventSimulator(circuit)
        prev = {"G1": 0, "G2": 1, "G3": 0, "G6": 1, "G7": 0}
        nxt = {"G1": 1, "G2": 0, "G3": 1, "G6": 0, "G7": 1}
        result = sim.simulate_transition(prev, nxt)
        again = loads_vcd(dumps_vcd(result.waveforms))
        horizon = result.waveforms.last_event_time() + 1
        for name in result.waveforms.names():
            for t in range(0, horizon + 1):
                assert again[name].value_at(t) == result.waveforms[
                    name
                ].value_at(t), (name, t)
