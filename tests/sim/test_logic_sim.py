import random

from repro.sim import (
    all_input_vectors,
    functional_sequence,
    settle,
    settle_outputs,
    simulate_words,
)

from tests.helpers import c17, tiny_and_or


class TestSettle:
    def test_values_for_all_nodes(self):
        c = tiny_and_or()
        values = settle(c, {"a": True, "b": True, "c": False})
        assert values == {
            "a": True, "b": True, "c": False, "g": True, "f": True
        }

    def test_settle_outputs(self):
        c = tiny_and_or()
        assert settle_outputs(c, {"a": 0, "b": 1, "c": 0}) == {"f": False}


class TestBitParallel:
    def test_words_agree_with_scalar(self):
        c = c17()
        rng = random.Random(7)
        words = {name: rng.getrandbits(64) for name in c.inputs}
        result = simulate_words(c, words)
        for lane in range(64):
            vec = {
                name: bool((words[name] >> lane) & 1) for name in c.inputs
            }
            expected = c.evaluate(vec)
            for name, word in result.items():
                assert bool((word >> lane) & 1) == expected[name], name

    def test_constants_and_xor(self):
        from repro.network import CircuitBuilder

        b = CircuitBuilder("k")
        a, = b.inputs("a")
        k1 = b.const1()
        x = b.xor_(a, k1, name="x")
        b.output(x)
        c = b.build()
        out = simulate_words(c, {"a": 0b1010})
        assert out["x"] & 0b1111 == 0b0101


class TestVectorHelpers:
    def test_all_input_vectors_count(self):
        c = tiny_and_or()
        vectors = all_input_vectors(c)
        assert len(vectors) == 8
        assert len({tuple(sorted(v.items())) for v in vectors}) == 8

    def test_functional_sequence(self):
        c = tiny_and_or()
        seq = [
            {"a": 1, "b": 1, "c": 0},
            {"a": 0, "b": 1, "c": 0},
            {"a": 0, "b": 0, "c": 1},
        ]
        outs = functional_sequence(c, seq)
        assert [o["f"] for o in outs] == [True, False, True]
