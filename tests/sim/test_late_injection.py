"""Regression tests for injection at an already-drained timestamp.

``advance(until=t)`` commits the batch at ``t``; a subsequent
``inject(t, ...)`` — legal, since ``t == now`` — must *merge* into that
committed time point, not queue a second batch at the same timestamp.
Queueing a second batch used to split one logical time point in two,
letting a zero-width input pulse straddle the batches and defeat the
Sec. IV-A instantaneous-glitch suppression.
"""

import pytest

from repro.network import CircuitBuilder
from repro.sim import EventSimulator


def buffered_input():
    """x -> unit-delay buffer g -> output."""
    b = CircuitBuilder("buffered")
    x, = b.inputs("x")
    g = b.buf(x, name="g", delay=1)
    b.output(g)
    return b.build()


def zero_delay_nand_pair():
    """Two inputs through a zero-delay NAND, then a unit-delay buffer —
    the classic glitch-filter witness: a and b swapping simultaneously
    must not pulse the NAND."""
    b = CircuitBuilder("glitch")
    a, bb = b.inputs("a", "b")
    n = b.nand(a, bb, name="n", delay=0)
    g = b.buf(n, name="g", delay=1)
    b.output(g)
    return b.build()


class TestLateInjectionMerges:
    def test_zero_width_pulse_across_drained_boundary_is_suppressed(self):
        """a falls at t=5 via the queue; after advance(until=5) drains the
        batch, b rises late *at the same t=5*.  Logically a and b swap
        simultaneously, so the NAND (a=1,b=0 -> a=0,b=1) stays at 1 and
        no pulse may reach g."""
        sim = EventSimulator(zero_delay_nand_pair())
        session = sim.session({"a": True, "b": False})
        assert session.value_at_sample("n") is True
        session.inject(5, {"a": False})
        session.advance(until=5)
        session.inject(5, {"b": True})  # merge, not a second batch
        session.advance()
        assert session.waveforms["n"].events == []
        assert session.waveforms["g"].events == []
        assert session.value_at_sample("g") is True

    def test_split_injection_equals_single_batch(self):
        """Reference run injects {a, b} as one batch; the split run drains
        the first half before injecting the second.  All waveforms must
        agree."""
        circuit = zero_delay_nand_pair()
        reference = EventSimulator(circuit).session({"a": True, "b": False})
        reference.inject(5, {"a": False, "b": True})
        reference.advance()

        split = EventSimulator(circuit).session({"a": True, "b": False})
        split.inject(5, {"a": False})
        split.advance(until=5)
        split.inject(5, {"b": True})
        split.advance()

        for name in ("a", "b", "n", "g"):
            assert (
                split.waveforms[name].events
                == reference.waveforms[name].events
            ), name

    def test_late_revert_coalesces_to_no_event(self):
        """x rises at t=3 (committed), then a late injection at t=3 puts
        it back: batch semantics say the time point nets to no change, so
        the downstream event at t=4 must be withdrawn."""
        sim = EventSimulator(buffered_input())
        session = sim.session({"x": False})
        session.inject(3, {"x": True})
        session.advance(until=3)
        session.inject(3, {"x": False})
        session.advance()
        assert session.value_at_sample("g") is False
        assert session.waveforms["g"].events == []

    def test_injection_into_the_past_still_raises(self):
        sim = EventSimulator(buffered_input())
        session = sim.session({"x": False})
        session.advance(until=10)
        with pytest.raises(ValueError):
            session.inject(9, {"x": True})

    def test_injection_at_now_before_drain_still_queues(self):
        """now == 0 at session start but nothing is drained yet: a plain
        inject at time 0 must go through the queue as before."""
        sim = EventSimulator(buffered_input())
        session = sim.session({"x": False})
        session.inject(0, {"x": True})
        assert not session.quiescent
        session.advance()
        assert session.waveforms["g"].events == [(1, True)]

    def test_sequential_loop_regime(self):
        """The state-feedback pattern of repro.fsm.sequential: advance to
        the clock edge, then inject the next vector exactly at the edge.
        The merged semantics must still produce the buffered response one
        delay later."""
        sim = EventSimulator(buffered_input())
        session = sim.session({"x": False})
        for cycle in range(4):
            edge = cycle * 2
            session.advance(until=edge)
            session.inject(edge, {"x": cycle % 2 == 1})
        session.advance()
        assert session.waveforms["x"].events == [(2, True), (4, False),
                                                 (6, True)]
        assert session.waveforms["g"].events == [(3, True), (5, False),
                                                 (7, True)]
