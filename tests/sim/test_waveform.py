import pytest

from repro.sim import Waveform, WaveformSet


class TestWaveform:
    def test_append_and_query(self):
        w = Waveform(False)
        w.append(3, True)
        w.append(5, False)
        assert w.value_at(0) is False
        assert w.value_at(3) is True   # right-continuous
        assert w.value_before(3) is False
        assert w.value_at(4) is True
        assert w.value_at(9) is False
        assert w.final is False
        assert w.last_event_time == 5

    def test_no_op_append_ignored(self):
        w = Waveform(True)
        w.append(2, True)
        assert w.is_stable()

    def test_same_time_overwrite(self):
        w = Waveform(False)
        w.append(2, True)
        w.append(2, False)
        assert w.is_stable()

    def test_same_time_overwrite_keeps_real_change(self):
        w = Waveform(False)
        w.append(2, True)
        w.append(4, False)
        w.append(4, True)
        assert w.events == [(2, True)]

    def test_out_of_order_rejected(self):
        w = Waveform(False)
        w.append(5, True)
        with pytest.raises(ValueError):
            w.append(3, False)

    def test_transition_times_and_glitches(self):
        w = Waveform(False)
        w.append(1, True)
        w.append(2, False)
        w.append(4, True)
        assert w.transition_times() == [1, 2, 4]
        assert w.num_transitions() == 3
        assert w.glitches() == 2

    def test_glitches_none_when_monotone(self):
        w = Waveform(False)
        w.append(3, True)
        assert w.glitches() == 0

    def test_render_length(self):
        w = Waveform(False)
        w.append(2, True)
        strip = w.render(4)
        assert len(strip) == 5
        assert strip[0] != strip[2]


class TestWaveformSet:
    def make(self):
        a = Waveform(False)
        a.append(2, True)
        b = Waveform(True)
        return WaveformSet({"a": a, "b": b})

    def test_access(self):
        ws = self.make()
        assert "a" in ws and "z" not in ws
        assert sorted(ws.names()) == ["a", "b"]
        assert ws["b"].is_stable()

    def test_last_event_time(self):
        ws = self.make()
        assert ws.last_event_time() == 2
        assert ws.last_event_time(["b"]) == 0

    def test_render_includes_all_names(self):
        text = self.make().render()
        assert "a" in text and "b" in text
