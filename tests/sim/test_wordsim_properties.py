"""Property tests: every bit lane of the word-level kernel equals the
scalar evaluator, and the batched consumers stay byte-identical."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build_circuit
from repro.core.statistical import uniform_variation
from repro.sim import EventSimulator, batch_settle, settle, simulate_words

from tests.helpers import random_circuit

REGISTRY_CIRCUITS = ("fig1", "fig2", "c17", "parity16", "csa8")


def lanes_agree_with_settle(circuit, width, seed):
    rng = random.Random(seed)
    words = {name: rng.getrandbits(width) for name in circuit.inputs}
    result = simulate_words(circuit, words, width=width)
    for lane in range(width):
        vector = {
            name: bool((words[name] >> lane) & 1) for name in circuit.inputs
        }
        expected = settle(circuit, vector)
        for name, word in result.items():
            assert bool((word >> lane) & 1) == expected[name], (
                name,
                lane,
                circuit.name,
            )


class TestLaneScalarEquivalence:
    @pytest.mark.parametrize("name", REGISTRY_CIRCUITS)
    @pytest.mark.parametrize("width", (64, 512))
    def test_registry_circuits(self, name, width):
        lanes_agree_with_settle(build_circuit(name), width, seed=hash(name))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_one_lane_word(self, seed):
        circuit = random_circuit(seed, num_inputs=4, num_gates=8)
        lanes_agree_with_settle(circuit, 64, seed)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_eight_lane_word(self, seed):
        circuit = random_circuit(seed, num_inputs=4, num_gates=8)
        lanes_agree_with_settle(circuit, 512, seed)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_batch_settle_cross_checked(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=6)
        rng = random.Random(seed)
        vectors = [
            {name: bool(rng.getrandbits(1)) for name in circuit.inputs}
            for __ in range(37)
        ]
        # check=True raises internally on any lane-vs-scalar divergence.
        assert batch_settle(circuit, vectors, check=True) == [
            settle(circuit, v) for v in vectors
        ]


class TestMonteCarloByteIdentity:
    """The settled-state hoist must not change a single sample."""

    def scalar_reference_samples(self, circuit, pairs, num_samples, seed):
        """The pre-kernel sampling loop: per-sample scalar settles."""
        from repro.core.statistical import _nominal_delays
        from repro.runtime.parallel import sample_seed

        nominal = _nominal_delays(circuit)
        samples = []
        for index in range(num_samples):
            rng = random.Random(sample_seed(seed, index))
            sample_circuit = circuit.copy()
            for name, nom in nominal.items():
                sample_circuit.set_delay(
                    name, uniform_variation(1)(rng, nom)
                )
            simulator = EventSimulator(sample_circuit)
            samples.append(
                max(
                    simulator.measure_pair_delay(pair.v_prev, pair.v_next)
                    for pair in pairs
                )
            )
        return samples

    @pytest.mark.parametrize("jobs", (1, 4))
    def test_samples_match_scalar_reference(self, jobs):
        from repro.core import certify, monte_carlo_delay

        circuit = build_circuit("c17")
        report = certify(circuit)
        pairs = [pair for __, pair in report.pairs.values()]
        reference = self.scalar_reference_samples(
            circuit, pairs, num_samples=24, seed=13
        )
        result = monte_carlo_delay(
            circuit, pairs, num_samples=24, seed=13, jobs=jobs
        )
        assert result.samples == reference
