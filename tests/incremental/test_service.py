"""The JSON-lines query service: protocol, golden session, transports."""

import io
import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.incremental import (
    QueryService,
    WarmPool,
    prepare_unix_socket_path,
    serve_stream,
    serve_unix,
)
from repro.incremental.service import ServiceError
from repro.runtime import METRICS

from tests.helpers import C17_BENCH

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVICE_DIR = REPO_ROOT / "tests" / "service"
sys.path.insert(0, str(SERVICE_DIR))
from normalize import normalize_line  # noqa: E402


def run_session(requests, **service_kwargs):
    service = QueryService(**service_kwargs)
    reader = io.StringIO(
        "\n".join(json.dumps(request) for request in requests) + "\n"
    )
    writer = io.StringIO()
    serve_stream(service, reader, writer)
    return [json.loads(line) for line in writer.getvalue().splitlines()]


def test_request_ids_are_deterministic_counters():
    responses = run_session(
        [{"op": "load", "bench": C17_BENCH}, {"op": "stats"}]
    )
    assert [r["id"] for r in responses] == ["req-000001", "req-000002"]
    assert all(r["ok"] for r in responses)


def test_errors_are_reported_not_fatal():
    service = QueryService()
    lines = [
        json.dumps({"op": "query", "kind": "floating"}),  # nothing loaded
        "not json at all",
        json.dumps({"op": "frobnicate"}),
        json.dumps({"op": "load", "bench": C17_BENCH}),
        json.dumps({"op": "edit", "edits": [
            {"op": "rewire", "name": "G22", "fanins": ["G22"]}  # cycle
        ]}),
        json.dumps({"op": "query", "kind": "floating"}),
    ]
    writer = io.StringIO()
    serve_stream(service, io.StringIO("\n".join(lines) + "\n"), writer)
    responses = [json.loads(line) for line in writer.getvalue().splitlines()]
    assert [r["ok"] for r in responses] == [
        False, False, False, True, False, True,
    ]
    # The cycle-rejected edit left the circuit intact and queryable.
    assert responses[-1]["result"]["record"]["delay"] == 3


def test_shutdown_op_ends_the_loop():
    responses = run_session(
        [
            {"op": "load", "bench": C17_BENCH},
            {"op": "shutdown"},
            {"op": "stats"},  # never reached
        ]
    )
    assert len(responses) == 2
    assert responses[-1]["result"] == {"stopping": True}


def test_scripted_session_matches_golden():
    """The CI serve-protocol check, in-process: replay the scripted
    session and diff the normalised responses against the golden file."""
    session = (SERVICE_DIR / "session.jsonl").read_text().splitlines()
    golden = (SERVICE_DIR / "golden_session.jsonl").read_text().splitlines()
    # The stats op reports process-global counters; zero them so the
    # in-process replay matches a fresh ``repro serve`` process.
    METRICS.reset()
    service = QueryService()
    writer = io.StringIO()
    serve_stream(service, iter(session), writer)
    got = [
        normalize_line(line, strip_stats=False)
        for line in writer.getvalue().splitlines()
    ]
    assert got == golden


def test_scripted_session_over_subprocess_cli():
    """End to end through ``python -m repro serve`` on stdio."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "serve"],
        input=(SERVICE_DIR / "session.jsonl").read_text(),
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    got = [
        normalize_line(line, strip_stats=False)
        for line in completed.stdout.splitlines()
    ]
    golden = (SERVICE_DIR / "golden_session.jsonl").read_text().splitlines()
    assert got == golden


def test_degraded_warm_pool_round_preserves_records():
    """A crashing worker (injected) degrades the warm pool to serial
    execution; every record and certification vector stays identical."""
    os.environ["REPRO_FAULT_INJECT"] = "crash:0"
    try:
        session = (SERVICE_DIR / "session.jsonl").read_text().splitlines()
        with WarmPool(jobs=2, timeout=60) as pool:
            service = QueryService(jobs=2, pool=pool)
            writer = io.StringIO()
            serve_stream(service, iter(session), writer)
        degraded = [
            normalize_line(line, strip_stats=True)
            for line in writer.getvalue().splitlines()
        ]
    finally:
        del os.environ["REPRO_FAULT_INJECT"]
    golden = [
        normalize_line(line, strip_stats=True)
        for line in (SERVICE_DIR / "golden_session.jsonl")
        .read_text()
        .splitlines()
    ]
    assert degraded == golden


def test_final_line_without_trailing_newline_is_serviced():
    """Regression: a stream ending without '\\n' on the last request
    used to drop it; readline-based framing services it at EOF."""
    service = QueryService()
    reader = io.StringIO(
        json.dumps({"op": "load", "bench": C17_BENCH})
        + "\n"
        + json.dumps({"op": "query", "kind": "transition"})  # no newline
    )
    writer = io.StringIO()
    serve_stream(service, reader, writer)
    responses = [json.loads(line) for line in writer.getvalue().splitlines()]
    assert len(responses) == 2
    assert responses[1]["ok"]
    assert responses[1]["result"]["record"]["delay"] == 3


def test_final_line_without_trailing_newline_over_subprocess_cli():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    payload = (
        json.dumps({"op": "load", "bench": C17_BENCH})
        + "\n"
        + json.dumps({"op": "query", "kind": "transition"})  # no newline
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "serve"],
        input=payload,
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    responses = [
        json.loads(line) for line in completed.stdout.splitlines()
    ]
    assert len(responses) == 2
    assert responses[1]["result"]["record"]["delay"] == 3


def test_reload_drains_pool_and_counts():
    """Regression: 'load' on an already-loaded session replaces the
    engine without draining warm-pool state; now it drains the pool,
    invalidates the engine, and 'stats' reports the reload."""
    with WarmPool(jobs=2, timeout=60) as pool:
        service = QueryService(jobs=2, pool=pool)
        responses = []
        reader = iter(
            [
                json.dumps({"op": "load", "bench": C17_BENCH}),
                json.dumps({"op": "query", "kind": "transition"}),
                json.dumps({"op": "load", "bench": C17_BENCH}),
                json.dumps({"op": "query", "kind": "transition"}),
                json.dumps({"op": "stats"}),
            ]
        )
        writer = io.StringIO()
        serve_stream(service, reader, writer)
        responses = [
            json.loads(line) for line in writer.getvalue().splitlines()
        ]
        assert all(r["ok"] for r in responses)
        assert responses[3]["result"]["record"] == (
            responses[1]["result"]["record"]
        )
        assert responses[4]["result"]["reloads"] == 1
        assert pool.stats()["drains"] == 1


def test_stale_socket_file_is_probed_and_removed(tmp_path):
    path = str(tmp_path / "stale.sock")
    stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stale.bind(path)
    stale.close()  # no unlink: simulates a hard-killed server
    assert os.path.exists(path)
    prepare_unix_socket_path(path)
    assert not os.path.exists(path)


def test_live_socket_is_not_stolen(tmp_path):
    path = str(tmp_path / "live.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(1)
    try:
        with pytest.raises(ServiceError, match="listening"):
            prepare_unix_socket_path(path)
        assert os.path.exists(path)  # the live server keeps its socket
    finally:
        listener.close()
        os.unlink(path)


def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "serve.sock")
    service = QueryService()
    thread = threading.Thread(
        target=serve_unix, args=(service, path), daemon=True
    )
    thread.start()
    for __ in range(200):
        if os.path.exists(path):
            break
        thread.join(0.05)
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    with client:
        reader = client.makefile("r", encoding="utf-8")
        writer = client.makefile("w", encoding="utf-8")
        for request in (
            {"op": "load", "bench": C17_BENCH},
            {"op": "query", "kind": "transition"},
            {"op": "shutdown"},
        ):
            writer.write(json.dumps(request) + "\n")
            writer.flush()
        responses = [json.loads(reader.readline()) for __ in range(3)]
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not os.path.exists(path)  # graceful shutdown removed the socket
    assert responses[1]["result"]["record"]["delay"] == 3
