"""The incremental engine: byte-identity, reuse, and check savings."""

import pytest

from repro.circuits.generators import random_logic
from repro.incremental import (
    IncrementalTimingEngine,
    KINDS,
    WarmPool,
    cold_query,
)
from repro.runtime import DelayCache

from tests.helpers import c17


def large_circuit():
    return random_logic(num_inputs=12, num_gates=210, num_outputs=8, seed=42)


@pytest.mark.parametrize("kind", KINDS)
def test_first_query_matches_cold_reference(kind):
    circuit = c17()
    engine = IncrementalTimingEngine(circuit)
    assert engine.query(kind).record_json() == (
        cold_query(c17(), kind).record_json()
    )


@pytest.mark.parametrize("kind", KINDS)
def test_acceptance_single_gate_edit_on_200_gate_circuit(kind):
    """The issue's acceptance criterion, per delay kind: after one gate
    edit on a >=200-gate generated circuit the incremental re-query is
    byte-identical to a cold recomputation, reuses clean cones, and
    performs strictly fewer satisfiability checks than the cold run."""
    circuit = large_circuit()
    assert circuit.num_gates >= 200
    engine = IncrementalTimingEngine(circuit)
    engine.query(kind)

    edited = circuit.gate_names()[17]
    circuit.set_delay(edited, circuit.node(edited).delay + 2)

    incremental = engine.query(kind)
    cold = cold_query(circuit, kind)
    assert incremental.record_json() == cold.record_json()
    assert incremental.stats["reused_cones"] > 0
    assert incremental.stats["dirty_nodes"] > 0
    assert incremental.stats["evaluated_cones"] < len(circuit.outputs)
    if kind != "topological":  # topological queries perform no checks
        assert incremental.stats["checks"] < cold.stats["checks"]


def test_reverted_edit_hits_the_cone_cache():
    """Content-addressed recovery: undoing an edit re-serves the original
    cone results from the cache without recomputation."""
    circuit = large_circuit()
    engine = IncrementalTimingEngine(circuit)
    first = engine.query("transition")

    edited = circuit.gate_names()[17]
    original = circuit.node(edited).delay
    circuit.set_delay(edited, original + 2)
    engine.query("transition")

    circuit.set_delay(edited, original)
    reverted = engine.query("transition")
    assert reverted.record_json() == first.record_json()
    assert reverted.stats["cone_cache_hits"] > 0
    assert reverted.stats["checks"] == 0


def test_structural_edit_byte_identity():
    circuit = random_logic(
        num_inputs=8, num_gates=60, num_outputs=5, seed=9
    )
    engine = IncrementalTimingEngine(circuit)
    engine.query("floating")
    gate = circuit.gate_names()[10]
    fanins = list(circuit.node(gate).fanins)
    fanins[0] = circuit.inputs[0]
    circuit.rewire(gate, fanins)
    incremental = engine.query("floating")
    assert incremental.record_json() == (
        cold_query(circuit, "floating").record_json()
    )


def test_sharded_and_warm_pool_routes_are_result_identical():
    circuit = random_logic(
        num_inputs=8, num_gates=60, num_outputs=5, seed=11
    )
    serial = cold_query(circuit, "transition").record_json()
    assert cold_query(circuit, "transition", jobs=2).record_json() == serial
    with WarmPool(jobs=2) as pool:
        engine = IncrementalTimingEngine(circuit, pool=pool)
        assert engine.query("transition").record_json() == serial
        assert pool.stats()["rounds"] >= 1


def test_engine_accepts_external_cache_and_invalidate():
    circuit = c17()
    cache = DelayCache()
    engine = IncrementalTimingEngine(circuit, cache=cache)
    first = engine.query("transition")
    engine.invalidate()
    # Memo dropped, but the content-addressed cone cache still answers.
    again = engine.query("transition")
    assert again.record_json() == first.record_json()
    assert again.stats["cone_cache_hits"] == len(circuit.outputs)
    assert again.stats["checks"] == 0


def test_query_rejects_unknown_kind_and_empty_outputs():
    circuit = c17()
    engine = IncrementalTimingEngine(circuit)
    with pytest.raises(ValueError):
        engine.query("nope")
    circuit.set_outputs([])
    with pytest.raises(ValueError):
        engine.query("floating")
