"""Cone fingerprints, cone extraction, and cone-level cache keys."""

from repro.core import compute_floating_delay, compute_transition_delay
from repro.incremental import evaluate_cone, extract_cone
from repro.runtime import (
    DelayCache,
    circuit_fingerprint,
    circuit_merkle_root,
    cone_fingerprint,
    node_cone_fingerprints,
)

from tests.helpers import c17


def test_node_cone_fingerprints_change_exactly_downstream():
    circuit = c17()
    before = node_cone_fingerprints(circuit)
    circuit.set_delay("G10", 3)
    after = node_cone_fingerprints(circuit)
    # G10 feeds only G22: exactly {G10, G22} moves.
    changed = {name for name in before if before[name] != after[name]}
    assert changed == {"G10", "G22"}


def test_cone_fingerprint_ignores_edits_outside_the_cone():
    circuit = c17()
    g23_before = cone_fingerprint(circuit, "G23")
    g22_before = cone_fingerprint(circuit, "G22")
    circuit.set_delay("G10", 3)  # G10 is only in G22's cone
    assert cone_fingerprint(circuit, "G23") == g23_before
    assert cone_fingerprint(circuit, "G22") != g22_before


def test_merkle_root_tracks_every_observable_edit():
    circuit = c17()
    root = circuit_merkle_root(circuit)
    fp = circuit_fingerprint(circuit)
    circuit.set_delay("G19", 2)
    assert circuit_merkle_root(circuit) != root
    assert circuit_fingerprint(circuit) != fp


def test_merkle_root_covers_dead_nodes():
    circuit = c17()
    circuit.add_gate("dead", circuit.node("G10").gate_type, ("G1", "G2"))
    root = circuit_merkle_root(circuit)
    circuit.set_delay("dead", 7)
    assert circuit_merkle_root(circuit) != root


def test_extract_cone_is_parent_name_free_and_ordered():
    circuit = c17()
    cone = extract_cone(circuit, "G22")
    assert cone.name == "cone#G22"
    assert cone.outputs == ["G22"]
    # G7 is outside G22's cone; the rest keep declaration order.
    assert cone.inputs == ["G1", "G2", "G3", "G6"]
    cone.validate()
    # Same content extracted from a renamed parent: identical fingerprint.
    other = circuit.copy("renamed")
    assert circuit_fingerprint(extract_cone(other, "G22")) == (
        circuit_fingerprint(cone)
    )


def test_evaluate_cone_matches_whole_circuit_on_single_output():
    circuit = c17()
    cone = extract_cone(circuit, "G22")
    floating = evaluate_cone(cone, "floating")
    reference = compute_floating_delay(cone, cache=DelayCache(enabled=False))
    assert floating.delay == reference.delay
    assert floating.witness == reference.witness
    transition = evaluate_cone(cone, "transition")
    ref_t = compute_transition_delay(cone, cache=DelayCache(enabled=False))
    assert transition.delay == ref_t.delay
    assert transition.pair == ref_t.pair
    topo = evaluate_cone(cone, "topological")
    assert topo.delay == cone.topological_delay()
    assert topo.checks == 0


def test_cone_result_record_renders_full_width_vectors():
    circuit = c17()
    result = evaluate_cone(extract_cone(circuit, "G22"), "transition")
    record = result.record(circuit.inputs)
    assert record["delay"] == result.delay
    prev, nxt = record["pair"]
    # Rendered over ALL five parent inputs (G7 pinned to 0).
    assert len(prev) == len(nxt) == len(circuit.inputs)
    assert prev[circuit.inputs.index("G7")] == "0"


def test_token_for_keys_are_kind_and_engine_specific():
    cache = DelayCache()
    fp = "cone:" + "0" * 64
    t1 = cache.token_for(fp, "floating")
    t2 = cache.token_for(fp, "transition")
    t3 = cache.token_for(fp, "floating", engine="sat")
    assert len({t1, t2, t3}) == 3
    assert DelayCache(enabled=False).token_for(fp, "floating") is None


def test_cone_tokens_cannot_collide_with_circuit_tokens():
    circuit = c17()
    cache = DelayCache()
    whole = cache.token(circuit, "floating")
    cone = cache.token_for(
        cone_fingerprint(circuit, "G22"), "floating"
    )
    assert whole != cone
    assert cone_fingerprint(circuit, "G22").startswith("cone:")
