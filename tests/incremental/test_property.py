"""Property: random journal-edit sequences, incremental == from-scratch."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits.generators import random_logic
from repro.incremental import IncrementalTimingEngine, KINDS, cold_query
from repro.network.gates import GateType, UNARY_GATES

GATE_TYPES = [
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.NOT, GateType.BUF,
]


def apply_random_edit(circuit, rng_draw) -> bool:
    """Apply one randomly drawn journalled edit; returns False if the
    drawn edit was rejected (e.g. would create a cycle) and skipped."""
    gates = circuit.gate_names()
    name = gates[rng_draw(st.integers(0, len(gates) - 1))]
    op = rng_draw(st.sampled_from(["set_delay", "rewire", "replace_gate"]))
    try:
        if op == "set_delay":
            circuit.set_delay(name, rng_draw(st.integers(0, 3)))
        elif op == "rewire":
            node = circuit.node(name)
            pool = circuit.inputs + [g for g in gates if g != name]
            arity = (
                1
                if node.gate_type in UNARY_GATES
                else rng_draw(st.integers(1, 3))
            )
            fanins = [
                pool[rng_draw(st.integers(0, len(pool) - 1))]
                for __ in range(arity)
            ]
            circuit.rewire(name, fanins)
        else:
            circuit.replace_gate(
                name,
                gate_type=rng_draw(st.sampled_from(GATE_TYPES)),
                fanins=None,
                delay=rng_draw(st.integers(0, 3)),
            )
    except ValueError:
        return False  # cycle or arity rejection: the circuit is unchanged
    return True


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_random_edit_sequences_match_cold_rebuild(data):
    seed = data.draw(st.integers(0, 50))
    circuit = random_logic(
        num_inputs=5, num_gates=15, num_outputs=3, seed=seed
    )
    engine = IncrementalTimingEngine(circuit)
    engine.query("transition")
    num_edits = data.draw(st.integers(1, 4))
    for __ in range(num_edits):
        apply_random_edit(circuit, data.draw)
        circuit.validate()
        incremental = engine.query("transition")
        assert incremental.record_json() == (
            cold_query(circuit, "transition").record_json()
        )
    # After the whole sequence every kind agrees with a fresh rebuild.
    for kind in KINDS:
        assert engine.query(kind).record_json() == (
            cold_query(circuit, kind).record_json()
        )


@pytest.mark.parametrize("kind", ["floating", "transition"])
def test_fixed_edit_sequence_matches_cold_rebuild_at_jobs_4(kind):
    """The sharded route under a fixed what-if session: jobs=4 equals the
    serial from-scratch rebuild byte for byte."""
    circuit = random_logic(
        num_inputs=8, num_gates=80, num_outputs=6, seed=23
    )
    engine = IncrementalTimingEngine(circuit, jobs=4)
    engine.query(kind)
    gates = circuit.gate_names()
    circuit.set_delay(gates[3], 3)
    circuit.replace_gate(gates[40], delay=0)
    fanins = list(circuit.node(gates[60]).fanins)
    fanins[-1] = circuit.inputs[1]
    circuit.rewire(gates[60], fanins)
    incremental = engine.query(kind)
    cold = cold_query(circuit, kind)  # serial reference
    assert incremental.record_json() == cold.record_json()
