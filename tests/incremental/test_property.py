"""Property: random journal-edit sequences, incremental == from-scratch.

Circuits and edits both come from the shared fuzz corpus generators
(:mod:`repro.fuzz.generate` / :mod:`repro.fuzz.scenario`) — the same
draws ``trued fuzz`` sweeps, so a divergence found here is directly
expressible as a fuzz scenario and vice versa."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits.generators import random_logic
from repro.fuzz.generate import random_gate_circuit
from repro.fuzz.scenario import apply_edits, random_edit
from repro.incremental import IncrementalTimingEngine, KINDS, cold_query


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 50),
    edit_seed=st.integers(0, 10_000),
    num_edits=st.integers(1, 4),
)
def test_random_edit_sequences_match_cold_rebuild(
    seed, edit_seed, num_edits
):
    circuit = random_gate_circuit(
        seed, num_inputs=5, num_gates=15, max_delay=2, num_outputs=3
    )
    engine = IncrementalTimingEngine(circuit)
    engine.query("transition")
    rng = random.Random(f"prop-edit:{edit_seed}")
    for __ in range(num_edits):
        edit = random_edit(circuit, rng, max_delay=3)
        if edit is not None:
            apply_edits(circuit, [edit])
        circuit.validate()
        incremental = engine.query("transition")
        assert incremental.record_json() == (
            cold_query(circuit, "transition").record_json()
        )
    # After the whole sequence every kind agrees with a fresh rebuild.
    for kind in KINDS:
        assert engine.query(kind).record_json() == (
            cold_query(circuit, kind).record_json()
        )


@pytest.mark.parametrize("kind", ["floating", "transition"])
def test_fixed_edit_sequence_matches_cold_rebuild_at_jobs_4(kind):
    """The sharded route under a fixed what-if session: jobs=4 equals the
    serial from-scratch rebuild byte for byte."""
    circuit = random_logic(
        num_inputs=8, num_gates=80, num_outputs=6, seed=23
    )
    engine = IncrementalTimingEngine(circuit, jobs=4)
    engine.query(kind)
    gates = circuit.gate_names()
    circuit.set_delay(gates[3], 3)
    circuit.replace_gate(gates[40], delay=0)
    fanins = list(circuit.node(gates[60]).fanins)
    fanins[-1] = circuit.inputs[1]
    circuit.rewire(gates[60], fanins)
    incremental = engine.query(kind)
    cold = cold_query(circuit, kind)  # serial reference
    assert incremental.record_json() == cold.record_json()
