"""Edit journal and versioned invalidation on :class:`Circuit`."""

import pytest

from repro.network import Circuit, GateType

from tests.helpers import c17, tiny_and_or


def test_fresh_circuit_has_empty_journal():
    circuit = c17()
    assert circuit.revision == 0
    assert circuit.journal_length == 0
    assert circuit.journal() == ()


def test_set_delay_is_journalled():
    circuit = c17()
    circuit.set_delay("G10", 3)
    assert circuit.node("G10").delay == 3
    assert circuit.revision == 1
    (edit,) = circuit.journal()
    assert edit.op == "set_delay"
    assert edit.name == "G10"
    assert edit.detail == (3,)
    assert edit.revision == 1
    assert circuit.node_revision("G10") == 1
    assert circuit.node_revision("G11") == 0


def test_set_delay_same_value_is_a_no_op():
    circuit = c17()
    circuit.set_delay("G10", circuit.node("G10").delay)
    assert circuit.journal_length == 0
    assert circuit.revision == 0


def test_set_delay_keeps_structure_caches():
    """Regression (versioned invalidation): a delay edit must not force
    ``fanouts()``/``topological_order()`` to be recomputed."""
    circuit = c17()
    topo = circuit.topological_order()
    fanouts = circuit.fanouts()
    circuit.set_delay("G10", 5)
    assert circuit.topological_order() is topo
    assert circuit.fanouts() is fanouts


def test_structural_edit_invalidates_structure_caches():
    circuit = c17()
    fanouts = circuit.fanouts()
    assert "G16" in fanouts["G11"]
    circuit.rewire("G16", ("G2", "G10"))
    rebuilt = circuit.fanouts()
    assert rebuilt is not fanouts
    assert "G16" not in rebuilt["G11"]
    assert "G16" in rebuilt["G10"]


def test_rewire_is_journalled_and_validated():
    circuit = c17()
    circuit.rewire("G16", ("G2", "G10"))
    (edit,) = circuit.journal()
    assert edit.op == "rewire"
    assert edit.detail == (("G2", "G10"),)
    with pytest.raises(ValueError):
        circuit.rewire("G1", ("G2",))  # primary input
    with pytest.raises(ValueError):
        circuit.rewire("G16", ("nope",))  # missing fanin


def test_rewire_cycle_is_rejected_and_rolled_back():
    circuit = tiny_and_or()
    before = circuit.node("g").fanins
    with pytest.raises(ValueError, match="cycle"):
        circuit.rewire("g", ("f",))  # f depends on g
    assert circuit.node("g").fanins == before
    assert circuit.journal_length == 0
    circuit.validate()


def test_replace_gate_structural_and_delay_only():
    circuit = c17()
    topo = circuit.topological_order()
    # Delay-only: caches survive, journal records the full new state.
    circuit.replace_gate("G10", delay=4)
    assert circuit.topological_order() is topo
    assert circuit.node("G10").delay == 4
    # Type change: structural.
    circuit.replace_gate("G10", gate_type=GateType.AND)
    assert circuit.node("G10").gate_type == GateType.AND
    assert circuit.topological_order() is not topo
    ops = [edit.op for edit in circuit.journal()]
    assert ops == ["replace_gate", "replace_gate"]


def test_replace_gate_no_change_keeps_journal_quiet():
    circuit = c17()
    node = circuit.node("G10")
    circuit.replace_gate(
        "G10", gate_type=node.gate_type, fanins=node.fanins,
        delay=node.delay,
    )
    assert circuit.journal_length == 0


def test_remove_gate_requires_dead_gate():
    circuit = c17()
    with pytest.raises(ValueError):
        circuit.remove_gate("G11")  # still feeds G16/G19
    with pytest.raises(ValueError):
        circuit.remove_gate("G22")  # primary output
    with pytest.raises(ValueError):
        circuit.remove_gate("G1")  # primary input
    # Detach G10's only consumer, then remove it.
    circuit.rewire("G22", ("G16", "G16"))
    circuit.remove_gate("G10")
    assert "G10" not in circuit
    circuit.validate()
    assert [edit.op for edit in circuit.journal()] == [
        "rewire", "remove_gate",
    ]


def test_edits_since_returns_a_suffix():
    circuit = c17()
    circuit.set_delay("G10", 2)
    cursor = circuit.journal_length
    circuit.set_delay("G11", 3)
    circuit.set_delay("G16", 4)
    tail = circuit.edits_since(cursor)
    assert [edit.name for edit in tail] == ["G11", "G16"]
    assert circuit.edits_since(circuit.journal_length) == ()


def test_copy_does_not_inherit_journal_but_keeps_caches():
    circuit = c17()
    circuit.set_delay("G10", 2)
    circuit.topological_order()
    clone = circuit.copy("clone")
    assert clone.journal_length == 0
    assert clone.revision == 0
    # Structure caches transferred: no recomputation on the clone.
    assert clone._topo_cache is not None
    assert clone._fanout_cache is not None
    assert clone.topological_order() == circuit.topological_order()


def test_journalled_edits_preserve_function_when_expected():
    """rewire followed by the inverse rewire restores behaviour."""
    circuit = c17()
    baseline = {
        out: circuit.evaluate_outputs(
            {name: bool(i % 2) for i, name in enumerate(circuit.inputs)}
        )[out]
        for out in circuit.outputs
    }
    original = circuit.node("G16").fanins
    circuit.rewire("G16", ("G2", "G10"))
    circuit.rewire("G16", original)
    restored = {
        out: circuit.evaluate_outputs(
            {name: bool(i % 2) for i, name in enumerate(circuit.inputs)}
        )[out]
        for out in circuit.outputs
    }
    assert restored == baseline
    assert circuit.journal_length == 2
