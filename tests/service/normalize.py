"""Normalise ``repro serve`` JSON-lines output for golden-file diffs.

Reads responses from stdin, writes normalised responses to stdout:

* ``elapsed_ms`` is dropped everywhere (the only wall-clock field in the
  protocol — everything else is deterministic);
* with ``--strip-stats``, responses carrying accounting payloads
  (``stats``/``counters``/``pool`` keys) are reduced to a marker.  The CI
  degraded-pool round uses this: a crashed worker changes pool accounting
  but must not change any delay record or certification vector.

Usage: ``repro serve < session.jsonl | python tests/service/normalize.py``
"""

import json
import sys


def normalize_line(line: str, strip_stats: bool) -> str:
    response = json.loads(line)
    response.pop("elapsed_ms", None)
    result = response.get("result")
    if strip_stats and isinstance(result, dict):
        if "counters" in result or "pool" in result:
            response["result"] = {"stripped": "stats"}
        elif "stats" in result:
            result = dict(result)
            result.pop("stats")
            response["result"] = result
    return json.dumps(response, sort_keys=True)


def main() -> int:
    strip_stats = "--strip-stats" in sys.argv[1:]
    for line in sys.stdin:
        if not line.strip():
            continue
        print(normalize_line(line, strip_stats))
    return 0


if __name__ == "__main__":
    sys.exit(main())
