#!/usr/bin/env python3
"""Bracketing the delay of a multiplier (the C6288 scenario).

Multipliers defeat ROBDDs (Sec. V-G) and, at 16x16, also defeat a
pure-Python CDCL's final refutation.  The engineering answer is to bracket:

* **upper bound** — the topological delay (and, when affordable, the
  floating delay via the SAT engine);
* **lower bound** — a *witnessed* delay from simulation search (random
  pairs + hill climbing): every reported value is replayable.

On an 8x8 multiplier the exact symbolic result is still affordable, so we
also show the bracket closing onto it.

Run:  python examples/multiplier_bracketing.py
"""

from repro.boolfn import SatEngine
from repro.circuits import array_multiplier
from repro.core import (
    compute_transition_delay,
    trace_critical_chain,
    transition_delay_lower_bound,
)
from repro.sim import EventSimulator


def main() -> None:
    # --- 8x8: the bracket and the exact answer --------------------------
    mult8 = array_multiplier(8)
    print(f"{mult8.name} (8x8): l.d. = {mult8.topological_delay()}")
    bound = transition_delay_lower_bound(mult8, random_pairs=48, climbs=6)
    print(bound.describe(mult8.inputs))
    exact = compute_transition_delay(mult8, engine=SatEngine())
    print(f"exact transition delay (SAT engine): {exact.delay} "
          f"({exact.checks} checks)")
    assert bound.delay <= exact.delay <= mult8.topological_delay()
    print()

    # --- 16x16: bracket only (the exact run needs hours of CDCL) --------
    mult16 = array_multiplier(16, name="c6288-standin")
    print(f"{mult16.name} (16x16): l.d. = {mult16.topological_delay()}")
    bound16 = transition_delay_lower_bound(
        mult16, random_pairs=32, climbs=4, climb_steps=150
    )
    print(bound16.describe(mult16.inputs))
    print(
        f"bracket: {bound16.delay} <= t.d. <= "
        f"{mult16.topological_delay()}"
    )
    print()

    # The witnessed slow pair is a real stimulus: trace its event chain.
    chain = trace_critical_chain(mult16, bound16.pair)
    print(f"witnessed chain settles at {chain.end_time}; first/last hops:")
    parts = chain.render().split(" -> ")
    print("  " + " -> ".join(parts[:3]) + " -> ... -> " + " -> ".join(parts[-3:]))

    # Replay certifies the bound.
    observed = EventSimulator(mult16).measure_pair_delay(
        bound16.pair.v_prev, bound16.pair.v_next
    )
    assert observed == bound16.delay
    print(f"replay observed delay: {observed} (bound certified)")


if __name__ == "__main__":
    main()
