#!/usr/bin/env python3
"""FSM controller timing with the Sec. VI vector restrictions.

Floating vectors are restricted to i@s with s reachable; transition pairs
<i1@s1, i2@s2> must satisfy s2 = next_state(i1, s1).  The crafted
'sticky-bit' controller shows why the restriction matters: its transition
delay drops strictly below its floating delay, exactly like the paper's
planet/sand/scf rows.

Run:  python examples/fsm_timing.py
"""

from repro.boolfn import BddEngine
from repro.core import compute_floating_delay, compute_transition_delay
from repro.fsm import (
    loads_kiss,
    reachable_states_constraint,
    synthesize,
    transition_pair_constraint,
)
from repro.circuits.mcnc import sticky_bit_controller
from repro.sta import render_table

KISS = """
.i 2
.o 2
.r idle
0- idle  idle  00
1- idle  load  01
-0 load  run   10
-1 load  idle  00
11 run   done  11
10 run   run   10
0- run   load  01
-- done  idle  00
"""


def analyse(tag, logic):
    circuit = logic.circuit
    unconstrained = compute_transition_delay(circuit, engine=BddEngine())
    floating = compute_floating_delay(
        circuit,
        engine=BddEngine(),
        constraint=reachable_states_constraint(logic),
    )
    transition = compute_transition_delay(
        circuit,
        engine=BddEngine(),
        upper=floating.delay,
        constraint=transition_pair_constraint(logic),
    )
    return [
        tag,
        circuit.topological_delay(),
        unconstrained.delay,
        floating.delay,
        transition.delay,
    ], transition


def main() -> None:
    fsm = loads_kiss(KISS, "loader")
    logic = synthesize(fsm, fanin_limit=2)
    row1, __ = analyse("loader (KISS2)", logic)

    sticky = sticky_bit_controller(chain_len=6)
    row2, cert = analyse("sticky-bit", sticky)

    print(
        render_table(
            ["controller", "l.d.", "t.d. free", "f.d. reach", "t.d. seq"],
            [row1, row2],
            title="FSM timing under the Sec. VI restrictions",
        )
    )
    print()
    print("sticky-bit: the z-flipping edges all land in states whose s0")
    print("bit controls the output AND gate, so no admissible vector pair")
    print("excites the floating-critical chain -> t.d. = f.d. - 1.")
    print()

    pair = cert.pair
    enc = sticky.encoding
    s_prev = enc.decode([pair.v_prev[n] for n in sticky.state_names])
    s_next = enc.decode([pair.v_next[n] for n in sticky.state_names])
    i_prev = [pair.v_prev[n] for n in sticky.input_names]
    print(
        f"witness pair is a genuine machine step: state {s_prev} with "
        f"input {int(i_prev[0])} -> state {s_next}"
    )
    assert sticky.fsm.next_state(s_prev, i_prev) == s_next


if __name__ == "__main__":
    main()
