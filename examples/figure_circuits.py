#!/usr/bin/env python3
"""Walk through the paper's figure circuits (Figs. 1, 2, 3/4 and 5).

Run:  python examples/figure_circuits.py
"""

from repro.boolfn import BddEngine
from repro.core import (
    TransitionAnalysis,
    compute_bounded_transition_delay,
    compute_floating_delay,
    compute_transition_delay,
    theorem31_min_period,
    validate_period_by_simulation,
)
from repro.sim import EventSimulator
from repro.circuits import (
    fig1_circuit,
    fig1_vector_pair,
    fig2_circuit,
    fig3_circuit,
    fig5_circuit,
)


def fig1() -> None:
    print("=" * 64)
    print("Fig. 1 — glitch chain masks the floating-critical event")
    print("=" * 64)
    circuit = fig1_circuit()
    floating = compute_floating_delay(circuit)
    prev, nxt = fig1_vector_pair()
    result = EventSimulator(circuit).simulate_transition(prev, nxt)
    print(f"floating delay: {floating.delay}")
    print(f"on <1100, 0000> the output settles at {result.delay}:")
    print(result.waveforms.render(["a", "b", "g1", "g2", "g3", "f"], 7))
    bounded = compute_bounded_transition_delay(circuit)
    print(
        f"with monotone speedups the late event returns: bounded t.d. = "
        f"{bounded.delay}"
    )
    print()


def fig2() -> None:
    print("=" * 64)
    print("Fig. 2 — transition delay < floating delay under ANY speedup")
    print("=" * 64)
    circuit = fig2_circuit()
    floating = compute_floating_delay(circuit)
    transition = compute_transition_delay(circuit)
    print(f"longest graphical path : {circuit.topological_delay()}")
    print(f"floating delay         : {floating.delay} "
          f"(witness {floating.witness})")
    print(f"transition delay       : {transition.delay}")
    result = EventSimulator(circuit).simulate_transition(
        {"a": True}, {"a": False}
    )
    print("on a falling input, d glitches but c holds the output:")
    print(result.waveforms.render(["a", "x3", "b", "d", "c", "e"], 8))
    tau = theorem31_min_period(circuit, transition.delay)
    check = validate_period_by_simulation(circuit, 4, num_vectors=60)
    print(f"Theorem 3.1 certifies any period > 3; e.g. tau = {tau}")
    print(f"clocked at 4 (below the floating delay 5): ok = {check.ok}")
    print()


def fig3() -> None:
    print("=" * 64)
    print("Figs. 3/4 — possible-transition windows by symbolic simulation")
    print("=" * 64)
    circuit, input_times = fig3_circuit()
    analysis = TransitionAnalysis(circuit, BddEngine(), input_times=input_times)
    for gate in ("g1", "g2", "g3", "g4"):
        windows = [
            f"[{t-1},{t}]" for t in analysis.possible_transition_times(gate)
        ]
        print(f"  {gate}: {' '.join(windows)}")
    print()


def fig5() -> None:
    print("=" * 64)
    print("Fig. 5 — symbolic interval functions in closed form")
    print("=" * 64)
    engine = BddEngine()
    analysis = TransitionAnalysis(fig5_circuit(), engine)
    pair = analysis.pair_for_conjunction([("f", 1), ("f", 2)])
    print(f"a pair exciting f at both 1 and 2: {pair.render(['a', 'b'])}")
    result = EventSimulator(fig5_circuit()).simulate_transition(
        pair.v_prev, pair.v_next
    )
    print(result.waveforms.render(["a", "b", "g", "f"], 3))
    print()


if __name__ == "__main__":
    fig1()
    fig2()
    fig3()
    fig5()
