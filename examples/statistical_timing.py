#!/usr/bin/env python3
"""Statistical timing follow-up (Sec. VII / ref. [11]).

When certification finds gamma < delta, what fraction of manufactured
parts will actually run at each period in between?  Monte Carlo over
per-gate delay variation, replaying the certification vector pairs.

Run:  python examples/statistical_timing.py
"""

from repro.circuits import carry_skip_adder
from repro.core import (
    collect_certification_pairs,
    compute_floating_delay,
    monte_carlo_delay,
    monte_carlo_topological,
    speedup_only_variation,
    uniform_variation,
)


def main() -> None:
    circuit = carry_skip_adder(12, block_size=4)
    floating = compute_floating_delay(circuit)
    pairs = [pair for __, pair in collect_certification_pairs(circuit).values()]
    print(
        f"{circuit.name}: l.d. {circuit.topological_delay()}, "
        f"f.d. {floating.delay}, {len(pairs)} certification pairs"
    )
    print()

    for label, model in [
        ("uniform +-1 variation", uniform_variation(1)),
        ("monotone speedup only", speedup_only_variation()),
    ]:
        stats = monte_carlo_delay(
            circuit, pairs, num_samples=80, delay_model=model
        )
        print(f"{label}:")
        print(
            f"  delay mean {stats.mean:.2f}, std {stats.std:.2f}, "
            f"min {stats.min}, p95 {stats.percentile(95)}, max {stats.max}"
        )
        for tau, y in stats.yield_curve():
            print(f"    period {tau:3}: {y:6.1%} {'#' * int(30 * y)}")
        print()

    topo = monte_carlo_topological(circuit, num_samples=80)
    print(
        "vector-independent topological distribution (no false-path "
        f"awareness): mean {topo.mean:.2f}, max {topo.max} — pessimistic "
        "relative to the vector-driven distribution above."
    )


if __name__ == "__main__":
    main()
