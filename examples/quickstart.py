#!/usr/bin/env python3
"""Quickstart: build a circuit, compute its three delays, certify them.

Run:  python examples/quickstart.py
"""

from repro.circuits import carry_skip_adder
from repro.core import (
    certify,
    compute_floating_delay,
    compute_transition_delay,
    theorem31_min_period,
)
from repro.sim import EventSimulator
from repro.sta import timing_report


def main() -> None:
    # An 8-bit carry-skip adder: the classic circuit whose longest
    # graphical path (the full ripple chain) can never be exercised.
    circuit = carry_skip_adder(8, block_size=4)
    print(f"Circuit: {circuit}")
    print()

    # 1. The static-timing baseline (what a longest-path verifier reports).
    print(timing_report(circuit, max_paths=1))

    # 2. The floating delay — false paths eliminated, safe under speedups.
    floating = compute_floating_delay(circuit)
    print(floating.describe(circuit.inputs))
    print()

    # 3. The transition delay — two-vector single-stepping mode, plus the
    #    certification vector pair (the paper's headline output).
    transition = compute_transition_delay(circuit, upper=floating.delay)
    print(transition.describe(circuit.inputs))
    print()

    # 4. Replay the vector pair on the event-driven timing simulator: the
    #    observed delay must reproduce the computed one exactly.
    simulator = EventSimulator(circuit)
    observed = simulator.measure_pair_delay(
        transition.pair.v_prev, transition.pair.v_next
    )
    print(f"replayed vector pair -> observed delay {observed}")
    assert observed == transition.delay

    # 5. A clock period certified by Theorem 3.1.
    tau = theorem31_min_period(circuit, transition.delay)
    print(f"certified minimum clock period (Theorem 3.1): {tau}")
    print()

    # 6. Or just run the whole Sec. VII flow in one call.
    report = certify(circuit)
    print(report.describe())


if __name__ == "__main__":
    main()
