#!/usr/bin/env python3
"""The Sec. VII certified-timing-verification methodology, end to end.

A design team's scenario: the verifier runs with pessimistic (2x) gate
delays, the sign-off simulation runs with the accurate post-layout delays,
and the statistical follow-up estimates speed binning between gamma and
delta.

Run:  python examples/certify_flow.py
"""

from repro.circuits import carry_skip_adder
from repro.core import certify
from repro.network import scale_delays
from repro.sta import render_table


def main() -> None:
    silicon = carry_skip_adder(12, block_size=4)
    estimated = scale_delays(silicon, 2)  # the verifier's margins

    report = certify(
        estimated,
        accurate_circuit=silicon,
        statistical_samples=60,
    )
    print(report.describe())
    print()

    print("per-output certification vectors:")
    rows = [
        [out, t, pair.render(silicon.inputs)[:48] + "..."]
        for out, (t, pair) in sorted(report.pairs.items())
    ]
    print(render_table(["output", "predicted t", "vector pair"], rows))
    print()

    stats = report.statistics
    gamma, delta = report.gamma, report.transition.delay
    print(f"speed binning between gamma={gamma} and delta={delta}:")
    for tau, yield_fraction in stats.yield_curve(gamma, delta):
        bar = "#" * int(40 * yield_fraction)
        print(f"  period {tau:3}: {yield_fraction:6.1%} {bar}")


if __name__ == "__main__":
    main()
