#!/usr/bin/env python3
"""Path-delay-fault test generation — the paper's second application.

"We see the immediate practical applications of this work in certified
timing verification and delay fault testing" (Sec. VIII).  This example
generates hazard-free robust two-pattern tests for the longest paths of a
carry-skip adder, shows that its false ripple path is untestable (it is
false!), and validates a test by fault injection.

Run:  python examples/delay_fault_testing.py
"""

from repro.circuits import carry_skip_adder
from repro.core import (
    PathFault,
    PathFaultGenerator,
    TestStrength,
    validate_test_by_fault_injection,
)
from repro.network import k_longest_paths
from repro.sta import render_table


def main() -> None:
    circuit = carry_skip_adder(8, block_size=4)
    generator = PathFaultGenerator(circuit)

    # The graphically longest path is the full ripple chain — false, so no
    # two-pattern test of any strength exists.
    (length, ripple_path), = k_longest_paths(circuit, 1)
    fault = PathFault(list(ripple_path), rising=True)
    for strength in (TestStrength.ROBUST, TestStrength.NON_ROBUST):
        test = generator.generate(fault, strength)
        print(
            f"full ripple chain (length {length}), {strength.value} test: "
            f"{'NONE — the path is false' if test is None else 'found?!'}"
        )
    print()

    # Coverage over the longest paths, both transition directions.  The
    # first testable faults only appear once the enumeration gets past
    # the false ripple chains — exactly the false-path phenomenon.
    for count in (8, 16, 32, 64, 128):
        coverage = generator.generate_for_longest_paths(count, strong=True)
        print(
            f"{count:4} longest paths: {len(coverage.tests)} testable, "
            f"{len(coverage.untestable)} untestable "
            f"({coverage.coverage:.0%} coverage)"
        )
        if coverage.tests:
            break
    print()
    rows = []
    for test in coverage.tests[:8]:
        rows.append(
            [
                str(test.fault)[:44],
                test.path_length,
                test.pair.render(circuit.inputs)[:40],
            ]
        )
    print(
        render_table(
            ["fault", "len", "two-pattern test"],
            rows,
            title=f"robust tests ({coverage.coverage:.0%} of "
                  f"{coverage.total} faults on the {count} longest paths)",
        )
    )
    print()
    for fault in coverage.untestable[:4]:
        print(f"untestable (false/unsensitizable): {fault}")
    print()

    # Fault injection: slowing any on-path gate shifts the observed output
    # event by exactly the injected amount.
    test = coverage.tests[0]
    ok = validate_test_by_fault_injection(circuit, test, extra_delay=5)
    print(f"fault-injection validation of '{test.fault}': {ok}")


if __name__ == "__main__":
    main()
