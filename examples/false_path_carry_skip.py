#!/usr/bin/env python3
"""False-path analysis of carry-skip adders.

Shows how the topological delay diverges from the floating/transition delay
as the adder grows (the skip muxes make the full ripple chain false), and
prints the certification vector pair exciting the true critical path.

Run:  python examples/false_path_carry_skip.py
"""

from repro.circuits import carry_skip_adder, ripple_carry_adder
from repro.core import compute_floating_delay, compute_transition_delay
from repro.network import k_longest_paths
from repro.sim import EventSimulator
from repro.sta import render_table


def main() -> None:
    rows = []
    for width in (8, 12, 16):
        skip = carry_skip_adder(width, block_size=4)
        floating = compute_floating_delay(skip)
        transition = compute_transition_delay(skip, upper=floating.delay)
        rows.append(
            [
                f"carry-skip {width}",
                skip.topological_delay(),
                floating.delay,
                transition.delay,
                skip.topological_delay() - floating.delay,
            ]
        )
    ripple = ripple_carry_adder(8)
    floating = compute_floating_delay(ripple)
    transition = compute_transition_delay(ripple, upper=floating.delay)
    rows.append(
        [
            "ripple 8 (no false paths)",
            ripple.topological_delay(),
            floating.delay,
            transition.delay,
            ripple.topological_delay() - floating.delay,
        ]
    )
    print(
        render_table(
            ["adder", "l.d.", "f.d.", "t.d.", "false-path gap"],
            rows,
            title="False paths in carry-skip adders",
        )
    )
    print()

    # Inspect the 16-bit adder's longest graphical paths: the top ones run
    # through every ripple stage and are false.
    skip = carry_skip_adder(16, block_size=4)
    print("three longest graphical paths (16-bit skip adder):")
    for length, path in k_longest_paths(skip, 3):
        print(f"  length {length}: {' -> '.join(path[:6])} ... {path[-1]}")
    print()

    # The certification pair excites an event along the longest TRUE path;
    # replay it and show the critical output's waveform.
    cert = compute_transition_delay(skip)
    print(cert.describe(skip.inputs))
    simulator = EventSimulator(skip)
    result = simulator.simulate_transition(cert.pair.v_prev, cert.pair.v_next)
    wave = result.waveforms[cert.output]
    print(f"\ncritical output {cert.output}: events {wave.events}")
    assert wave.last_event_time == cert.delay


if __name__ == "__main__":
    main()
